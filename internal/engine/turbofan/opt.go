package turbofan

import "wasmdb/internal/wasm"

// A block is a basic block; branch instruction imm fields hold target block
// ids while optimization runs, and the block falls through to its successor
// in graph order unless it ends in an unconditional transfer.
type block struct {
	ins []tin
}

type graph struct {
	blocks []block
	tables [][]uint32 // entries are block ids during optimization
}

// isBranch reports whether op transfers control, and whether it is
// unconditional (ends fallthrough).
func isBranch(op uint16) (branch, uncond bool) {
	switch {
	case op == tJump:
		return true, true
	case op == tRet, op == tUnreachable:
		return true, true
	case op == tJumpIfZero, op == tJumpIfNot:
		return true, false
	case op == tBrTable:
		return true, true
	case op >= tBrCmpBase && op < tBrCmpBase+numCmpKinds,
		op >= tBrCmpNotBase && op < tBrCmpNotBase+numCmpKinds:
		return true, false
	}
	return false, false
}

// hasTarget reports whether the branch op's imm is a jump target.
func hasTarget(op uint16) bool {
	if op == tRet || op == tUnreachable || op == tBrTable {
		return false
	}
	b, _ := isBranch(op)
	return b
}

// buildBlocks splits linear code (with pc targets) into basic blocks and
// rewrites targets to block ids.
func buildBlocks(ins []tin, tables [][]uint32) *graph {
	n := len(ins)
	leader := make([]bool, n+1)
	leader[0] = true
	for i, t := range ins {
		if br, _ := isBranch(t.op); !br {
			continue
		}
		leader[i+1] = true
		if hasTarget(t.op) {
			leader[t.imm] = true
		}
	}
	for _, tbl := range tables {
		for _, pc := range tbl {
			leader[pc] = true
		}
	}
	blockOf := make([]int, n+1)
	id := -1
	for i := 0; i <= n; i++ {
		if i < n && leader[i] {
			id++
		}
		blockOf[i] = id
	}
	// A trailing target pointing one past the end maps to a synthetic final
	// empty block.
	numBlocks := id + 1
	if leader[n] {
		blockOf[n] = numBlocks
		numBlocks++
	} else {
		blockOf[n] = numBlocks - 1
	}
	g := &graph{blocks: make([]block, numBlocks)}
	cur := -1
	for i := 0; i < n; i++ {
		if leader[i] {
			cur++
		}
		g.blocks[cur].ins = append(g.blocks[cur].ins, ins[i])
	}
	// Rewrite pc targets to block ids.
	for bi := range g.blocks {
		for ii := range g.blocks[bi].ins {
			t := &g.blocks[bi].ins[ii]
			if hasTarget(t.op) {
				t.imm = uint64(blockOf[t.imm])
			}
		}
	}
	g.tables = make([][]uint32, len(tables))
	for ti, tbl := range tables {
		g.tables[ti] = make([]uint32, len(tbl))
		for i, pc := range tbl {
			g.tables[ti][i] = uint32(blockOf[pc])
		}
	}
	return g
}

// successors appends the successor block ids of block bi to dst.
func (g *graph) successors(bi int, dst []int) []int {
	ins := g.blocks[bi].ins
	fall := true
	if len(ins) > 0 {
		last := ins[len(ins)-1]
		if br, uncond := isBranch(last.op); br {
			if hasTarget(last.op) {
				dst = append(dst, int(last.imm))
			}
			if last.op == tBrTable {
				for _, t := range g.tables[last.imm] {
					dst = append(dst, int(t))
				}
			}
			fall = !uncond
		}
	}
	if fall && bi+1 < len(g.blocks) {
		dst = append(dst, bi+1)
	}
	return dst
}

// ---------------------------------------------------------------------------
// Optimizer.

type optimizer struct {
	g      *graph
	nRegs  int
	code   *Code
	rounds int
	passes int
}

func (o *optimizer) run() {
	if o.rounds <= 0 {
		o.rounds = 2
	}
	for round := 0; round < o.rounds; round++ {
		o.foldBlocks()
		o.passes++
		o.fuseBranches()
		o.passes++
		o.threadJumps()
		o.passes++
		o.deadCodeElim()
		o.passes++
	}
}

// regUses calls fn for every register read by t.
func (o *optimizer) regUses(t *tin, fn func(r int32)) {
	kind, _ := classify(t.op)
	switch kind {
	case kindBin:
		fn(t.a)
		fn(t.b)
	case kindUn, kindLoad, kindMove:
		fn(t.a)
	case kindStore:
		fn(t.a)
		fn(t.b)
	case kindSelect:
		fn(t.a)
		fn(t.b)
		fn(int32(t.imm))
	case kindConst:
	default:
		switch {
		case t.op == tJumpIfZero || t.op == tJumpIfNot || t.op == tMemoryGrow ||
			t.op == tGlobalSet || t.op == tBrTable:
			fn(t.a)
		case t.op >= tBrCmpBase && t.op < tBrCmpNotBase+numCmpKinds && t.op >= 0x200:
			fn(t.a)
			fn(t.b)
		case t.op == tCall:
			np := int32(t.b >> 16)
			for r := t.a; r < t.a+np; r++ {
				fn(r)
			}
		case t.op == tCallIndirect:
			np := int32(t.b >> 16)
			for r := t.a; r <= t.a+np; r++ {
				fn(r)
			}
		case t.op == tRet:
			for i := 0; i < o.code.NResults; i++ {
				fn(int32(o.code.NLocals + i))
			}
		}
	}
}

// regDefs calls fn for every register written by t.
func (o *optimizer) regDefs(t *tin, fn func(r int32)) {
	kind, _ := classify(t.op)
	switch kind {
	case kindBin, kindUn, kindLoad, kindMove, kindConst, kindSelect:
		fn(t.d)
	default:
		switch t.op {
		case tMemorySize, tMemoryGrow, tGlobalGet:
			fn(t.d)
		case tCall:
			nr := int32(t.b & 0xFFFF)
			for r := t.a; r < t.a+nr; r++ {
				fn(r)
			}
		case tCallIndirect:
			nr := int32(t.b & 0xFFFF)
			for r := t.a; r < t.a+nr; r++ {
				fn(r)
			}
		}
	}
}

// foldBlocks performs block-local constant propagation, copy propagation,
// and constant folding.
func (o *optimizer) foldBlocks() {
	constKnown := make([]bool, o.nRegs)
	constVal := make([]uint64, o.nRegs)
	copySrc := make([]int32, o.nRegs)
	for bi := range o.g.blocks {
		for i := range constKnown {
			constKnown[i] = false
			copySrc[i] = -1
		}
		ins := o.g.blocks[bi].ins
		kill := func(d int32) {
			constKnown[d] = false
			copySrc[d] = -1
			for r := range copySrc {
				if copySrc[r] == d {
					copySrc[r] = -1
				}
			}
		}
		for ii := range ins {
			t := &ins[ii]
			// Rewrite uses through available copies.
			rewrite := func(r int32) int32 {
				if s := copySrc[r]; s >= 0 {
					return s
				}
				return r
			}
			kind, _ := classify(t.op)
			switch kind {
			case kindBin:
				t.a, t.b = rewrite(t.a), rewrite(t.b)
			case kindUn, kindLoad, kindMove:
				t.a = rewrite(t.a)
			case kindStore:
				t.a, t.b = rewrite(t.a), rewrite(t.b)
			case kindSelect:
				t.a, t.b = rewrite(t.a), rewrite(t.b)
				t.imm = uint64(rewrite(int32(t.imm)))
			default:
				switch {
				case t.op == tJumpIfZero || t.op == tJumpIfNot || t.op == tGlobalSet || t.op == tBrTable || t.op == tMemoryGrow:
					t.a = rewrite(t.a)
				case t.op >= tBrCmpBase && t.op < tBrCmpNotBase+numCmpKinds:
					t.a, t.b = rewrite(t.a), rewrite(t.b)
				}
				// Calls and rets use canonical registers; no rewriting.
			}

			// Transform and update dataflow facts.
			switch kind {
			case kindConst:
				kill(t.d)
				constKnown[t.d] = true
				constVal[t.d] = t.imm
			case kindMove:
				if constKnown[t.a] {
					v := constVal[t.a]
					*t = tin{op: uint16(wasm.OpI64Const), d: t.d, imm: v}
					kill(t.d)
					constKnown[t.d] = true
					constVal[t.d] = v
				} else {
					src := t.a
					kill(t.d)
					if src != t.d {
						copySrc[t.d] = src
					}
				}
			case kindBin:
				if constKnown[t.a] && constKnown[t.b] {
					if v, ok := pureEval(t.op, constVal[t.a], constVal[t.b]); ok {
						*t = tin{op: uint16(wasm.OpI64Const), d: t.d, imm: v}
						kill(t.d)
						constKnown[t.d] = true
						constVal[t.d] = v
						continue
					}
				}
				kill(t.d)
			case kindUn:
				if constKnown[t.a] {
					if v, ok := pureEval(t.op, constVal[t.a], 0); ok {
						*t = tin{op: uint16(wasm.OpI64Const), d: t.d, imm: v}
						kill(t.d)
						constKnown[t.d] = true
						constVal[t.d] = v
						continue
					}
				}
				kill(t.d)
			case kindSelect:
				if cr := int32(t.imm); constKnown[cr] {
					if constVal[cr] != 0 {
						*t = tin{op: tMove, d: t.d, a: t.a}
					} else {
						*t = tin{op: tMove, d: t.d, a: t.b}
					}
					src := t.a
					kill(t.d)
					if constKnown[src] {
						constKnown[t.d] = true
						constVal[t.d] = constVal[src]
					} else if src != t.d {
						copySrc[t.d] = src
					}
					continue
				}
				kill(t.d)
			default:
				switch t.op {
				case tJumpIfZero:
					if constKnown[t.a] {
						if constVal[t.a] == 0 {
							*t = tin{op: tJump, imm: t.imm}
						} else {
							*t = tin{op: tNop}
						}
					}
				case tJumpIfNot:
					if constKnown[t.a] {
						if constVal[t.a] != 0 {
							*t = tin{op: tJump, imm: t.imm}
						} else {
							*t = tin{op: tNop}
						}
					}
				default:
					o.regDefs(t, func(r int32) { kill(r) })
				}
			}
		}
	}
}

// fuseBranches fuses comparison results consumed directly by a conditional
// branch into a single compare-and-branch instruction, and folds eqz into
// branch polarity.
//
// Correctness: the stack-to-register lowering reuses slots, so the compare's
// destination usually aliases its first operand (d == a). The fused branch
// reads the *operands*, so the compare must be removed, not merely left for
// DCE — otherwise it clobbers the operand before the branch reads it. The
// removal is safe exactly when d is an operand-stack slot (d ≥ NLocals):
// the branch pops that stack position, and the wasm stack discipline
// guarantees any later use of the slot is preceded by a write. When the
// result lands in a local (via local.tee), it may outlive the branch and we
// skip fusion.
func (o *optimizer) fuseBranches() {
	nLocals := int32(o.code.NLocals)
	for bi := range o.g.blocks {
		ins := o.g.blocks[bi].ins
		for i := 0; i+1 < len(ins); i++ {
			def, br := &ins[i], &ins[i+1]
			if br.op != tJumpIfZero && br.op != tJumpIfNot {
				continue
			}
			if def.op == tNop || def.d < nLocals || br.a != def.d {
				continue
			}
			// eqz feeding a branch flips polarity. Registers hold i32
			// values zero-extended, so testing the full register is safe
			// for i32.eqz as well.
			if def.op == uint16(wasm.OpI32Eqz) || def.op == uint16(wasm.OpI64Eqz) {
				flip := uint16(tJumpIfZero)
				if br.op == tJumpIfZero {
					flip = tJumpIfNot
				}
				*br = tin{op: flip, a: def.a, imm: br.imm}
				*def = tin{op: tNop}
				continue
			}
			k, ok := cmpKind(def.op)
			if !ok {
				continue
			}
			var fused uint16
			if br.op == tJumpIfNot {
				fused = uint16(tBrCmpBase + k)
			} else {
				fused = uint16(tBrCmpNotBase + k)
			}
			*br = tin{op: fused, a: def.a, b: def.b, imm: br.imm}
			*def = tin{op: tNop}
		}
	}
}

// threadJumps retargets branches that point at blocks containing only an
// unconditional jump.
func (o *optimizer) threadJumps() {
	target := func(bid uint64) uint64 {
		for hops := 0; hops < 8; hops++ {
			blk := &o.g.blocks[bid]
			redirected := false
			for _, t := range blk.ins {
				switch t.op {
				case tNop:
					continue
				case tJump:
					if t.imm == bid {
						return bid // self-loop
					}
					bid = t.imm
					redirected = true
				}
				break
			}
			if !redirected {
				return bid
			}
		}
		return bid
	}
	for bi := range o.g.blocks {
		for ii := range o.g.blocks[bi].ins {
			t := &o.g.blocks[bi].ins[ii]
			if hasTarget(t.op) {
				t.imm = target(t.imm)
			}
		}
	}
	for ti := range o.g.tables {
		for i := range o.g.tables[ti] {
			o.g.tables[ti][i] = uint32(target(uint64(o.g.tables[ti][i])))
		}
	}
}

// deadCodeElim removes pure instructions whose results are never used,
// using global liveness over the block graph.
func (o *optimizer) deadCodeElim() {
	nb := len(o.g.blocks)
	words := (o.nRegs + 63) / 64
	liveIn := make([][]uint64, nb)
	liveOut := make([][]uint64, nb)
	for i := range liveIn {
		liveIn[i] = make([]uint64, words)
		liveOut[i] = make([]uint64, words)
	}
	set := func(bs []uint64, r int32) { bs[r>>6] |= 1 << (r & 63) }
	clear := func(bs []uint64, r int32) { bs[r>>6] &^= 1 << (r & 63) }
	get := func(bs []uint64, r int32) bool { return bs[r>>6]&(1<<(r&63)) != 0 }

	// Backward fixpoint.
	scratch := make([]uint64, words)
	var succ []int
	for changed := true; changed; {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			succ = o.g.successors(bi, succ[:0])
			for w := range scratch {
				scratch[w] = 0
			}
			for _, s := range succ {
				for w := range scratch {
					scratch[w] |= liveIn[s][w]
				}
			}
			copy(liveOut[bi], scratch)
			// live = out; walk block backwards applying use/def.
			ins := o.g.blocks[bi].ins
			for ii := len(ins) - 1; ii >= 0; ii-- {
				t := &ins[ii]
				if t.op == tNop {
					continue
				}
				o.regDefs(t, func(r int32) { clear(scratch, r) })
				o.regUses(t, func(r int32) { set(scratch, r) })
			}
			for w := range scratch {
				if scratch[w] != liveIn[bi][w] {
					liveIn[bi][w] = scratch[w]
					changed = true
				}
			}
		}
	}

	// Removal pass: walk each block backwards with running liveness.
	for bi := 0; bi < nb; bi++ {
		copy(scratch, liveOut[bi])
		ins := o.g.blocks[bi].ins
		for ii := len(ins) - 1; ii >= 0; ii-- {
			t := &ins[ii]
			if t.op == tNop {
				continue
			}
			kind, traps := classify(t.op)
			removable := false
			switch kind {
			case kindBin, kindUn, kindConst, kindMove, kindSelect, kindLoad:
				removable = !traps
			}
			if removable {
				dead := true
				o.regDefs(t, func(r int32) {
					if get(scratch, r) {
						dead = false
					}
				})
				if dead {
					*t = tin{op: tNop}
					continue
				}
			}
			o.regDefs(t, func(r int32) { clear(scratch, r) })
			o.regUses(t, func(r int32) { set(scratch, r) })
		}
	}
}

// ---------------------------------------------------------------------------
// Linearization: blocks → final instruction stream with pc targets.

func linearize(c *Code, g *graph) {
	// Emit blocks in order, dropping nops and jumps to the next block, and
	// record each block's start pc.
	var out []tin
	start := make([]int, len(g.blocks)+1)
	for bi := range g.blocks {
		start[bi] = len(out)
		for _, t := range g.blocks[bi].ins {
			if t.op == tNop || (t.op == tJump && int(t.imm) == bi+1) {
				continue
			}
			out = append(out, t)
		}
	}
	start[len(g.blocks)] = len(out)
	// Rewrite block-id targets to pcs.
	for i := range out {
		if hasTarget(out[i].op) {
			out[i].imm = uint64(start[out[i].imm])
		}
	}
	c.tables = make([][]uint32, len(g.tables))
	for ti, tbl := range g.tables {
		c.tables[ti] = make([]uint32, len(tbl))
		for i, b := range tbl {
			c.tables[ti][i] = uint32(start[b])
		}
	}
	// Guarantee the stream ends in a control transfer (lowering always emits
	// tRet, but a trailing empty block may remain a jump target).
	if n := len(out); n == 0 || !isUncond(out[n-1].op) {
		out = append(out, tin{op: tRet})
	}
	c.ins = out
}

func isUncond(op uint16) bool {
	_, u := isBranch(op)
	return u
}
