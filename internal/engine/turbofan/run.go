package turbofan

import (
	"math"
	"math/bits"

	"wasmdb/internal/engine/rt"
	"wasmdb/internal/wasm"
)

// Call executes the compiled function, implementing rt.Callee. All registers
// (locals followed by stack slots) live in a frame carved from the shared
// arena.
func (c *Code) Call(env *rt.Env, args, res []uint64) {
	env.Enter()
	frame := env.Frame(c.NLocals + c.MaxStack)
	copy(frame, args[:c.NParams])
	c.run(env, frame)
	copy(res, frame[c.NLocals:c.NLocals+c.NResults])
	env.PopFrame(c.NLocals + c.MaxStack)
	env.Exit()
}

func (c *Code) run(env *rt.Env, regs []uint64) {
	mem := env.Mem
	var pages [][]byte
	if mem != nil {
		pages = mem.PageSlice()
	}
	ins := c.ins
	pc := 0
	for {
		t := ins[pc]
		switch t.op {
		case tMove:
			regs[t.d] = regs[t.a]
		case uint16(wasm.OpI32Const), uint16(wasm.OpI64Const),
			uint16(wasm.OpF32Const), uint16(wasm.OpF64Const):
			regs[t.d] = t.imm
		case tJump:
			// Taken backward jumps (loop back-edges) charge fuel so runaway
			// loops stay interruptible; unmetered runs pay only the bool test.
			if env.Metered && int(t.imm) <= pc {
				env.UseFuel(1)
			}
			pc = int(t.imm)
			continue
		case tJumpIfZero:
			if regs[t.a] == 0 {
				if env.Metered && int(t.imm) <= pc {
					env.UseFuel(1)
				}
				pc = int(t.imm)
				continue
			}
		case tJumpIfNot:
			if regs[t.a] != 0 {
				if env.Metered && int(t.imm) <= pc {
					env.UseFuel(1)
				}
				pc = int(t.imm)
				continue
			}
		case tRet:
			return
		case tUnreachable:
			rt.Trap("unreachable executed")
		case tBrTable:
			tbl := c.tables[t.imm]
			i := int(uint32(regs[t.a]))
			if i >= len(tbl)-1 {
				i = len(tbl) - 1
			}
			if env.Metered && int(tbl[i]) <= pc {
				env.UseFuel(1)
			}
			pc = int(tbl[i])
			continue
		case tCall:
			np, nr := int(t.b>>16), int(t.b&0xFFFF)
			env.Funcs[t.imm].Call(env, regs[t.a:t.a+int32(np)], regs[t.a:t.a+int32(nr)])
			if mem != nil {
				pages = mem.PageSlice()
			}
		case tCallIndirect:
			np, nr := int(t.b>>16), int(t.b&0xFFFF)
			ti := uint32(regs[t.a+int32(np)])
			if ti >= uint32(len(env.Table)) {
				rt.Trap("undefined element in call_indirect")
			}
			fi := env.Table[ti]
			if fi == ^uint32(0) {
				rt.Trap("uninitialized element in call_indirect")
			}
			if !env.Types[env.FuncTypes[fi]].Equal(env.Types[t.imm]) {
				rt.Trap("indirect call type mismatch")
			}
			env.Funcs[fi].Call(env, regs[t.a:t.a+int32(np)], regs[t.a:t.a+int32(nr)])
			if mem != nil {
				pages = mem.PageSlice()
			}
		case tSelect:
			if regs[t.imm] != 0 {
				regs[t.d] = regs[t.a]
			} else {
				regs[t.d] = regs[t.b]
			}
		case tGlobalGet:
			regs[t.d] = env.Globals[t.imm]
		case tGlobalSet:
			env.Globals[t.imm] = regs[t.a]
		case tMemorySize:
			regs[t.d] = uint64(mem.Pages())
		case tMemoryGrow:
			regs[t.d] = uint64(uint32(mem.Grow(uint32(regs[t.a]))))
			pages = mem.PageSlice()

		// Memory.
		case uint16(wasm.OpI32Load):
			regs[t.d] = uint64(rt.LdU32(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 4)))
		case uint16(wasm.OpI64Load):
			regs[t.d] = rt.LdU64(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 8))
		case uint16(wasm.OpF32Load):
			regs[t.d] = uint64(rt.LdU32(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 4)))
		case uint16(wasm.OpF64Load):
			regs[t.d] = rt.LdU64(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 8))
		case uint16(wasm.OpI32Load8S):
			regs[t.d] = uint64(uint32(int32(int8(rt.LdU8(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 1))))))
		case uint16(wasm.OpI32Load8U):
			regs[t.d] = uint64(rt.LdU8(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 1)))
		case uint16(wasm.OpI32Load16S):
			regs[t.d] = uint64(uint32(int32(int16(rt.LdU16(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 2))))))
		case uint16(wasm.OpI32Load16U):
			regs[t.d] = uint64(rt.LdU16(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 2)))
		case uint16(wasm.OpI64Load8S):
			regs[t.d] = uint64(int64(int8(rt.LdU8(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 1)))))
		case uint16(wasm.OpI64Load8U):
			regs[t.d] = uint64(rt.LdU8(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 1)))
		case uint16(wasm.OpI64Load16S):
			regs[t.d] = uint64(int64(int16(rt.LdU16(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 2)))))
		case uint16(wasm.OpI64Load16U):
			regs[t.d] = uint64(rt.LdU16(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 2)))
		case uint16(wasm.OpI64Load32S):
			regs[t.d] = uint64(int64(int32(rt.LdU32(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 4)))))
		case uint16(wasm.OpI64Load32U):
			regs[t.d] = uint64(rt.LdU32(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 4)))
		case uint16(wasm.OpI32Store), uint16(wasm.OpF32Store):
			rt.StU32(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 4), uint32(regs[t.b]))
		case uint16(wasm.OpI64Store), uint16(wasm.OpF64Store):
			rt.StU64(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 8), regs[t.b])
		case uint16(wasm.OpI32Store8), uint16(wasm.OpI64Store8):
			rt.StU8(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 1), byte(regs[t.b]))
		case uint16(wasm.OpI32Store16), uint16(wasm.OpI64Store16):
			rt.StU16(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 2), uint16(regs[t.b]))
		case uint16(wasm.OpI64Store32):
			rt.StU32(pages, mem, rt.CheckAddr(regs[t.a], t.imm, 4), uint32(regs[t.b]))

		// i32 comparisons.
		case uint16(wasm.OpI32Eqz):
			regs[t.d] = rt.B2i(uint32(regs[t.a]) == 0)
		case uint16(wasm.OpI32Eq):
			regs[t.d] = rt.B2i(uint32(regs[t.a]) == uint32(regs[t.b]))
		case uint16(wasm.OpI32Ne):
			regs[t.d] = rt.B2i(uint32(regs[t.a]) != uint32(regs[t.b]))
		case uint16(wasm.OpI32LtS):
			regs[t.d] = rt.B2i(int32(uint32(regs[t.a])) < int32(uint32(regs[t.b])))
		case uint16(wasm.OpI32LtU):
			regs[t.d] = rt.B2i(uint32(regs[t.a]) < uint32(regs[t.b]))
		case uint16(wasm.OpI32GtS):
			regs[t.d] = rt.B2i(int32(uint32(regs[t.a])) > int32(uint32(regs[t.b])))
		case uint16(wasm.OpI32GtU):
			regs[t.d] = rt.B2i(uint32(regs[t.a]) > uint32(regs[t.b]))
		case uint16(wasm.OpI32LeS):
			regs[t.d] = rt.B2i(int32(uint32(regs[t.a])) <= int32(uint32(regs[t.b])))
		case uint16(wasm.OpI32LeU):
			regs[t.d] = rt.B2i(uint32(regs[t.a]) <= uint32(regs[t.b]))
		case uint16(wasm.OpI32GeS):
			regs[t.d] = rt.B2i(int32(uint32(regs[t.a])) >= int32(uint32(regs[t.b])))
		case uint16(wasm.OpI32GeU):
			regs[t.d] = rt.B2i(uint32(regs[t.a]) >= uint32(regs[t.b]))

		// i64 comparisons.
		case uint16(wasm.OpI64Eqz):
			regs[t.d] = rt.B2i(regs[t.a] == 0)
		case uint16(wasm.OpI64Eq):
			regs[t.d] = rt.B2i(regs[t.a] == regs[t.b])
		case uint16(wasm.OpI64Ne):
			regs[t.d] = rt.B2i(regs[t.a] != regs[t.b])
		case uint16(wasm.OpI64LtS):
			regs[t.d] = rt.B2i(int64(regs[t.a]) < int64(regs[t.b]))
		case uint16(wasm.OpI64LtU):
			regs[t.d] = rt.B2i(regs[t.a] < regs[t.b])
		case uint16(wasm.OpI64GtS):
			regs[t.d] = rt.B2i(int64(regs[t.a]) > int64(regs[t.b]))
		case uint16(wasm.OpI64GtU):
			regs[t.d] = rt.B2i(regs[t.a] > regs[t.b])
		case uint16(wasm.OpI64LeS):
			regs[t.d] = rt.B2i(int64(regs[t.a]) <= int64(regs[t.b]))
		case uint16(wasm.OpI64LeU):
			regs[t.d] = rt.B2i(regs[t.a] <= regs[t.b])
		case uint16(wasm.OpI64GeS):
			regs[t.d] = rt.B2i(int64(regs[t.a]) >= int64(regs[t.b]))
		case uint16(wasm.OpI64GeU):
			regs[t.d] = rt.B2i(regs[t.a] >= regs[t.b])

		// Float comparisons.
		case uint16(wasm.OpF32Eq):
			regs[t.d] = rt.B2i(rt.F32(regs[t.a]) == rt.F32(regs[t.b]))
		case uint16(wasm.OpF32Ne):
			regs[t.d] = rt.B2i(rt.F32(regs[t.a]) != rt.F32(regs[t.b]))
		case uint16(wasm.OpF32Lt):
			regs[t.d] = rt.B2i(rt.F32(regs[t.a]) < rt.F32(regs[t.b]))
		case uint16(wasm.OpF32Gt):
			regs[t.d] = rt.B2i(rt.F32(regs[t.a]) > rt.F32(regs[t.b]))
		case uint16(wasm.OpF32Le):
			regs[t.d] = rt.B2i(rt.F32(regs[t.a]) <= rt.F32(regs[t.b]))
		case uint16(wasm.OpF32Ge):
			regs[t.d] = rt.B2i(rt.F32(regs[t.a]) >= rt.F32(regs[t.b]))
		case uint16(wasm.OpF64Eq):
			regs[t.d] = rt.B2i(rt.F64(regs[t.a]) == rt.F64(regs[t.b]))
		case uint16(wasm.OpF64Ne):
			regs[t.d] = rt.B2i(rt.F64(regs[t.a]) != rt.F64(regs[t.b]))
		case uint16(wasm.OpF64Lt):
			regs[t.d] = rt.B2i(rt.F64(regs[t.a]) < rt.F64(regs[t.b]))
		case uint16(wasm.OpF64Gt):
			regs[t.d] = rt.B2i(rt.F64(regs[t.a]) > rt.F64(regs[t.b]))
		case uint16(wasm.OpF64Le):
			regs[t.d] = rt.B2i(rt.F64(regs[t.a]) <= rt.F64(regs[t.b]))
		case uint16(wasm.OpF64Ge):
			regs[t.d] = rt.B2i(rt.F64(regs[t.a]) >= rt.F64(regs[t.b]))

		// i32 numerics.
		case uint16(wasm.OpI32Add):
			regs[t.d] = uint64(uint32(regs[t.a]) + uint32(regs[t.b]))
		case uint16(wasm.OpI32Sub):
			regs[t.d] = uint64(uint32(regs[t.a]) - uint32(regs[t.b]))
		case uint16(wasm.OpI32Mul):
			regs[t.d] = uint64(uint32(regs[t.a]) * uint32(regs[t.b]))
		case uint16(wasm.OpI32DivS):
			regs[t.d] = rt.I32DivS(regs[t.a], regs[t.b])
		case uint16(wasm.OpI32DivU):
			regs[t.d] = rt.I32DivU(regs[t.a], regs[t.b])
		case uint16(wasm.OpI32RemS):
			regs[t.d] = rt.I32RemS(regs[t.a], regs[t.b])
		case uint16(wasm.OpI32RemU):
			regs[t.d] = rt.I32RemU(regs[t.a], regs[t.b])
		case uint16(wasm.OpI32And):
			regs[t.d] = uint64(uint32(regs[t.a]) & uint32(regs[t.b]))
		case uint16(wasm.OpI32Or):
			regs[t.d] = uint64(uint32(regs[t.a]) | uint32(regs[t.b]))
		case uint16(wasm.OpI32Xor):
			regs[t.d] = uint64(uint32(regs[t.a]) ^ uint32(regs[t.b]))
		case uint16(wasm.OpI32Shl):
			regs[t.d] = uint64(uint32(regs[t.a]) << (regs[t.b] & 31))
		case uint16(wasm.OpI32ShrS):
			regs[t.d] = uint64(uint32(int32(uint32(regs[t.a])) >> (regs[t.b] & 31)))
		case uint16(wasm.OpI32ShrU):
			regs[t.d] = uint64(uint32(regs[t.a]) >> (regs[t.b] & 31))
		case uint16(wasm.OpI32Rotl):
			regs[t.d] = rt.Rotl32(regs[t.a], regs[t.b])
		case uint16(wasm.OpI32Rotr):
			regs[t.d] = rt.Rotr32(regs[t.a], regs[t.b])
		case uint16(wasm.OpI32Clz):
			regs[t.d] = uint64(bits.LeadingZeros32(uint32(regs[t.a])))
		case uint16(wasm.OpI32Ctz):
			regs[t.d] = uint64(bits.TrailingZeros32(uint32(regs[t.a])))
		case uint16(wasm.OpI32Popcnt):
			regs[t.d] = uint64(bits.OnesCount32(uint32(regs[t.a])))

		// i64 numerics.
		case uint16(wasm.OpI64Add):
			regs[t.d] = regs[t.a] + regs[t.b]
		case uint16(wasm.OpI64Sub):
			regs[t.d] = regs[t.a] - regs[t.b]
		case uint16(wasm.OpI64Mul):
			regs[t.d] = regs[t.a] * regs[t.b]
		case uint16(wasm.OpI64DivS):
			regs[t.d] = rt.I64DivS(regs[t.a], regs[t.b])
		case uint16(wasm.OpI64DivU):
			regs[t.d] = rt.I64DivU(regs[t.a], regs[t.b])
		case uint16(wasm.OpI64RemS):
			regs[t.d] = rt.I64RemS(regs[t.a], regs[t.b])
		case uint16(wasm.OpI64RemU):
			regs[t.d] = rt.I64RemU(regs[t.a], regs[t.b])
		case uint16(wasm.OpI64And):
			regs[t.d] = regs[t.a] & regs[t.b]
		case uint16(wasm.OpI64Or):
			regs[t.d] = regs[t.a] | regs[t.b]
		case uint16(wasm.OpI64Xor):
			regs[t.d] = regs[t.a] ^ regs[t.b]
		case uint16(wasm.OpI64Shl):
			regs[t.d] = regs[t.a] << (regs[t.b] & 63)
		case uint16(wasm.OpI64ShrS):
			regs[t.d] = uint64(int64(regs[t.a]) >> (regs[t.b] & 63))
		case uint16(wasm.OpI64ShrU):
			regs[t.d] = regs[t.a] >> (regs[t.b] & 63)
		case uint16(wasm.OpI64Rotl):
			regs[t.d] = rt.Rotl64(regs[t.a], regs[t.b])
		case uint16(wasm.OpI64Rotr):
			regs[t.d] = rt.Rotr64(regs[t.a], regs[t.b])
		case uint16(wasm.OpI64Clz):
			regs[t.d] = uint64(bits.LeadingZeros64(regs[t.a]))
		case uint16(wasm.OpI64Ctz):
			regs[t.d] = uint64(bits.TrailingZeros64(regs[t.a]))
		case uint16(wasm.OpI64Popcnt):
			regs[t.d] = uint64(bits.OnesCount64(regs[t.a]))

		// f32 numerics.
		case uint16(wasm.OpF32Abs):
			regs[t.d] = uint64(uint32(regs[t.a]) &^ 0x80000000)
		case uint16(wasm.OpF32Neg):
			regs[t.d] = uint64(uint32(regs[t.a]) ^ 0x80000000)
		case uint16(wasm.OpF32Ceil):
			regs[t.d] = rt.F32Bits(float32(math.Ceil(float64(rt.F32(regs[t.a])))))
		case uint16(wasm.OpF32Floor):
			regs[t.d] = rt.F32Bits(float32(math.Floor(float64(rt.F32(regs[t.a])))))
		case uint16(wasm.OpF32Trunc):
			regs[t.d] = rt.F32Bits(float32(math.Trunc(float64(rt.F32(regs[t.a])))))
		case uint16(wasm.OpF32Nearest):
			regs[t.d] = rt.F32Bits(float32(math.RoundToEven(float64(rt.F32(regs[t.a])))))
		case uint16(wasm.OpF32Sqrt):
			regs[t.d] = rt.F32Bits(float32(math.Sqrt(float64(rt.F32(regs[t.a])))))
		case uint16(wasm.OpF32Add):
			regs[t.d] = rt.F32Bits(rt.F32(regs[t.a]) + rt.F32(regs[t.b]))
		case uint16(wasm.OpF32Sub):
			regs[t.d] = rt.F32Bits(rt.F32(regs[t.a]) - rt.F32(regs[t.b]))
		case uint16(wasm.OpF32Mul):
			regs[t.d] = rt.F32Bits(rt.F32(regs[t.a]) * rt.F32(regs[t.b]))
		case uint16(wasm.OpF32Div):
			regs[t.d] = rt.F32Bits(rt.F32(regs[t.a]) / rt.F32(regs[t.b]))
		case uint16(wasm.OpF32Min):
			regs[t.d] = rt.F32Bits(rt.FMin32(rt.F32(regs[t.a]), rt.F32(regs[t.b])))
		case uint16(wasm.OpF32Max):
			regs[t.d] = rt.F32Bits(rt.FMax32(rt.F32(regs[t.a]), rt.F32(regs[t.b])))
		case uint16(wasm.OpF32Copysign):
			regs[t.d] = rt.F32Bits(float32(math.Copysign(float64(rt.F32(regs[t.a])), float64(rt.F32(regs[t.b])))))

		// f64 numerics.
		case uint16(wasm.OpF64Abs):
			regs[t.d] = regs[t.a] &^ 0x8000000000000000
		case uint16(wasm.OpF64Neg):
			regs[t.d] = regs[t.a] ^ 0x8000000000000000
		case uint16(wasm.OpF64Ceil):
			regs[t.d] = rt.F64Bits(math.Ceil(rt.F64(regs[t.a])))
		case uint16(wasm.OpF64Floor):
			regs[t.d] = rt.F64Bits(math.Floor(rt.F64(regs[t.a])))
		case uint16(wasm.OpF64Trunc):
			regs[t.d] = rt.F64Bits(math.Trunc(rt.F64(regs[t.a])))
		case uint16(wasm.OpF64Nearest):
			regs[t.d] = rt.F64Bits(math.RoundToEven(rt.F64(regs[t.a])))
		case uint16(wasm.OpF64Sqrt):
			regs[t.d] = rt.F64Bits(math.Sqrt(rt.F64(regs[t.a])))
		case uint16(wasm.OpF64Add):
			regs[t.d] = rt.F64Bits(rt.F64(regs[t.a]) + rt.F64(regs[t.b]))
		case uint16(wasm.OpF64Sub):
			regs[t.d] = rt.F64Bits(rt.F64(regs[t.a]) - rt.F64(regs[t.b]))
		case uint16(wasm.OpF64Mul):
			regs[t.d] = rt.F64Bits(rt.F64(regs[t.a]) * rt.F64(regs[t.b]))
		case uint16(wasm.OpF64Div):
			regs[t.d] = rt.F64Bits(rt.F64(regs[t.a]) / rt.F64(regs[t.b]))
		case uint16(wasm.OpF64Min):
			regs[t.d] = rt.F64Bits(rt.FMin64(rt.F64(regs[t.a]), rt.F64(regs[t.b])))
		case uint16(wasm.OpF64Max):
			regs[t.d] = rt.F64Bits(rt.FMax64(rt.F64(regs[t.a]), rt.F64(regs[t.b])))
		case uint16(wasm.OpF64Copysign):
			regs[t.d] = rt.F64Bits(math.Copysign(rt.F64(regs[t.a]), rt.F64(regs[t.b])))

		// Conversions.
		case uint16(wasm.OpI32WrapI64):
			regs[t.d] = uint64(uint32(regs[t.a]))
		case uint16(wasm.OpI32TruncF32S):
			regs[t.d] = rt.TruncF32ToI32S(regs[t.a])
		case uint16(wasm.OpI32TruncF32U):
			regs[t.d] = rt.TruncF32ToI32U(regs[t.a])
		case uint16(wasm.OpI32TruncF64S):
			regs[t.d] = rt.TruncF64ToI32S(regs[t.a])
		case uint16(wasm.OpI32TruncF64U):
			regs[t.d] = rt.TruncF64ToI32U(regs[t.a])
		case uint16(wasm.OpI64ExtendI32S):
			regs[t.d] = uint64(int64(int32(uint32(regs[t.a]))))
		case uint16(wasm.OpI64ExtendI32U):
			regs[t.d] = uint64(uint32(regs[t.a]))
		case uint16(wasm.OpI64TruncF32S):
			regs[t.d] = rt.TruncF32ToI64S(regs[t.a])
		case uint16(wasm.OpI64TruncF32U):
			regs[t.d] = rt.TruncF32ToI64U(regs[t.a])
		case uint16(wasm.OpI64TruncF64S):
			regs[t.d] = rt.TruncF64ToI64S(regs[t.a])
		case uint16(wasm.OpI64TruncF64U):
			regs[t.d] = rt.TruncF64ToI64U(regs[t.a])
		case uint16(wasm.OpF32ConvertI32S):
			regs[t.d] = rt.F32Bits(float32(int32(uint32(regs[t.a]))))
		case uint16(wasm.OpF32ConvertI32U):
			regs[t.d] = rt.F32Bits(float32(uint32(regs[t.a])))
		case uint16(wasm.OpF32ConvertI64S):
			regs[t.d] = rt.F32Bits(float32(int64(regs[t.a])))
		case uint16(wasm.OpF32ConvertI64U):
			regs[t.d] = rt.F32Bits(float32(regs[t.a]))
		case uint16(wasm.OpF32DemoteF64):
			regs[t.d] = rt.F32Bits(float32(rt.F64(regs[t.a])))
		case uint16(wasm.OpF64ConvertI32S):
			regs[t.d] = rt.F64Bits(float64(int32(uint32(regs[t.a]))))
		case uint16(wasm.OpF64ConvertI32U):
			regs[t.d] = rt.F64Bits(float64(uint32(regs[t.a])))
		case uint16(wasm.OpF64ConvertI64S):
			regs[t.d] = rt.F64Bits(float64(int64(regs[t.a])))
		case uint16(wasm.OpF64ConvertI64U):
			regs[t.d] = rt.F64Bits(float64(regs[t.a]))
		case uint16(wasm.OpF64PromoteF32):
			regs[t.d] = rt.F64Bits(float64(rt.F32(regs[t.a])))
		case uint16(wasm.OpI32ReinterpretF32), uint16(wasm.OpI64ReinterpretF64),
			uint16(wasm.OpF32ReinterpretI32), uint16(wasm.OpF64ReinterpretI64):
			regs[t.d] = regs[t.a]
		case uint16(wasm.OpI32Extend8S):
			regs[t.d] = uint64(uint32(int32(int8(uint8(regs[t.a])))))
		case uint16(wasm.OpI32Extend16S):
			regs[t.d] = uint64(uint32(int32(int16(uint16(regs[t.a])))))
		case uint16(wasm.OpI64Extend8S):
			regs[t.d] = uint64(int64(int8(uint8(regs[t.a]))))
		case uint16(wasm.OpI64Extend16S):
			regs[t.d] = uint64(int64(int16(uint16(regs[t.a]))))
		case uint16(wasm.OpI64Extend32S):
			regs[t.d] = uint64(int64(int32(uint32(regs[t.a]))))

		default:
			// Fused compare-and-branch families.
			if t.op >= tBrCmpBase && t.op < tBrCmpBase+numCmpKinds {
				if evalCmp(int(t.op-tBrCmpBase), regs[t.a], regs[t.b]) {
					if env.Metered && int(t.imm) <= pc {
						env.UseFuel(1)
					}
					pc = int(t.imm)
					continue
				}
			} else if t.op >= tBrCmpNotBase && t.op < tBrCmpNotBase+numCmpKinds {
				if !evalCmp(int(t.op-tBrCmpNotBase), regs[t.a], regs[t.b]) {
					if env.Metered && int(t.imm) <= pc {
						env.UseFuel(1)
					}
					pc = int(t.imm)
					continue
				}
			} else {
				rt.Trap("turbofan: unknown opcode %#x", t.op)
			}
		}
		pc++
	}
}
