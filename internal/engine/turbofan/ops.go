// Package turbofan is the optimizing tier of the execution engine, named
// after V8's optimizing compiler. It compiles validated WebAssembly into
// register-machine code: the operand stack is eliminated (every stack slot
// maps to a fixed virtual register), then block-local constant folding, copy
// propagation, compare-and-branch fusion, jump threading, and global
// liveness-based dead-code elimination run over the basic-block graph.
// Compilation costs several passes — an order of magnitude more than liftoff
// — and yields correspondingly faster code, reproducing the tier asymmetry
// the paper's architecture delegates to V8 (§2.2).
package turbofan

import (
	"math"
	"math/bits"

	"wasmdb/internal/engine/rt"
	"wasmdb/internal/wasm"
)

// tin is a three-address register instruction. Simple value operations reuse
// the wasm.Opcode numbering (d ← a op b); extended opcodes ≥ 0x100 cover
// control flow, calls, and fused forms.
type tin struct {
	op      uint16
	d, a, b int32
	imm     uint64
}

// Extended opcodes.
const (
	tMove         = 0x100 + iota // d ← a
	tJump                        // imm = target block
	tJumpIfZero                  // if a == 0 goto imm
	tJumpIfNot                   // if a != 0 goto imm
	tBrTable                     // switch a over tables[imm]
	tRet                         // return; results in regs [nLocals, nLocals+nResults)
	tCall                        // call imm; args at regs [a, a+np), results at [a, a+nr); b = np<<16|nr
	tCallIndirect                // like tCall; imm = type index; table index in reg a+np
	tSelect                      // d ← (regs[imm] != 0) ? a : b
	tUnreachable                 // trap
	tMemorySize                  // d ← pages
	tMemoryGrow                  // d ← grow(a)
	tGlobalGet                   // d ← globals[imm]
	tGlobalSet                   // globals[imm] ← a
	tNop                         // removed at linearization
)

// Fused compare-and-branch opcodes: tBrCmpBase+k branches to imm when
// comparison k of (a, b) is true; tBrCmpNotBase+k branches when it is false.
// k indexes the comparison kinds below.
const (
	tBrCmpBase    = 0x200
	tBrCmpNotBase = 0x240
	numCmpKinds   = 32
)

// Comparison kind indices.
const (
	cmpI32Eq = iota
	cmpI32Ne
	cmpI32LtS
	cmpI32LtU
	cmpI32GtS
	cmpI32GtU
	cmpI32LeS
	cmpI32LeU
	cmpI32GeS
	cmpI32GeU
	cmpI64Eq
	cmpI64Ne
	cmpI64LtS
	cmpI64LtU
	cmpI64GtS
	cmpI64GtU
	cmpI64LeS
	cmpI64LeU
	cmpI64GeS
	cmpI64GeU
	cmpF32Eq
	cmpF32Ne
	cmpF32Lt
	cmpF32Gt
	cmpF32Le
	cmpF32Ge
	cmpF64Eq
	cmpF64Ne
	cmpF64Lt
	cmpF64Gt
	cmpF64Le
	cmpF64Ge
)

// cmpKind maps a wasm comparison opcode to its kind index; ok=false for
// non-comparison opcodes (including eqz, which fuses differently).
func cmpKind(op uint16) (int, bool) {
	switch {
	case op >= uint16(wasm.OpI32Eq) && op <= uint16(wasm.OpI32GeU):
		return cmpI32Eq + int(op) - int(wasm.OpI32Eq), true
	case op >= uint16(wasm.OpI64Eq) && op <= uint16(wasm.OpI64GeU):
		return cmpI64Eq + int(op) - int(wasm.OpI64Eq), true
	case op >= uint16(wasm.OpF32Eq) && op <= uint16(wasm.OpF32Ge):
		return cmpF32Eq + int(op) - int(wasm.OpF32Eq), true
	case op >= uint16(wasm.OpF64Eq) && op <= uint16(wasm.OpF64Ge):
		return cmpF64Eq + int(op) - int(wasm.OpF64Eq), true
	}
	return 0, false
}

// evalCmp evaluates comparison kind k on raw values.
func evalCmp(k int, x, y uint64) bool {
	switch k {
	case cmpI32Eq:
		return uint32(x) == uint32(y)
	case cmpI32Ne:
		return uint32(x) != uint32(y)
	case cmpI32LtS:
		return int32(uint32(x)) < int32(uint32(y))
	case cmpI32LtU:
		return uint32(x) < uint32(y)
	case cmpI32GtS:
		return int32(uint32(x)) > int32(uint32(y))
	case cmpI32GtU:
		return uint32(x) > uint32(y)
	case cmpI32LeS:
		return int32(uint32(x)) <= int32(uint32(y))
	case cmpI32LeU:
		return uint32(x) <= uint32(y)
	case cmpI32GeS:
		return int32(uint32(x)) >= int32(uint32(y))
	case cmpI32GeU:
		return uint32(x) >= uint32(y)
	case cmpI64Eq:
		return x == y
	case cmpI64Ne:
		return x != y
	case cmpI64LtS:
		return int64(x) < int64(y)
	case cmpI64LtU:
		return x < y
	case cmpI64GtS:
		return int64(x) > int64(y)
	case cmpI64GtU:
		return x > y
	case cmpI64LeS:
		return int64(x) <= int64(y)
	case cmpI64LeU:
		return x <= y
	case cmpI64GeS:
		return int64(x) >= int64(y)
	case cmpI64GeU:
		return x >= y
	case cmpF32Eq:
		return rt.F32(x) == rt.F32(y)
	case cmpF32Ne:
		return rt.F32(x) != rt.F32(y)
	case cmpF32Lt:
		return rt.F32(x) < rt.F32(y)
	case cmpF32Gt:
		return rt.F32(x) > rt.F32(y)
	case cmpF32Le:
		return rt.F32(x) <= rt.F32(y)
	case cmpF32Ge:
		return rt.F32(x) >= rt.F32(y)
	case cmpF64Eq:
		return rt.F64(x) == rt.F64(y)
	case cmpF64Ne:
		return rt.F64(x) != rt.F64(y)
	case cmpF64Lt:
		return rt.F64(x) < rt.F64(y)
	case cmpF64Gt:
		return rt.F64(x) > rt.F64(y)
	case cmpF64Le:
		return rt.F64(x) <= rt.F64(y)
	case cmpF64Ge:
		return rt.F64(x) >= rt.F64(y)
	}
	return false
}

// pureEval evaluates side-effect-free value operations at compile time for
// constant folding. Trapping operations (divisions, truncations) and memory
// operations report ok=false and are never folded.
func pureEval(op uint16, x, y uint64) (uint64, bool) {
	if k, ok := cmpKind(op); ok {
		return rt.B2i(evalCmp(k, x, y)), true
	}
	switch wasm.Opcode(op) {
	case wasm.OpI32Eqz:
		return rt.B2i(uint32(x) == 0), true
	case wasm.OpI64Eqz:
		return rt.B2i(x == 0), true
	case wasm.OpI32Add:
		return uint64(uint32(x) + uint32(y)), true
	case wasm.OpI32Sub:
		return uint64(uint32(x) - uint32(y)), true
	case wasm.OpI32Mul:
		return uint64(uint32(x) * uint32(y)), true
	case wasm.OpI32And:
		return uint64(uint32(x) & uint32(y)), true
	case wasm.OpI32Or:
		return uint64(uint32(x) | uint32(y)), true
	case wasm.OpI32Xor:
		return uint64(uint32(x) ^ uint32(y)), true
	case wasm.OpI32Shl:
		return uint64(uint32(x) << (y & 31)), true
	case wasm.OpI32ShrS:
		return uint64(uint32(int32(uint32(x)) >> (y & 31))), true
	case wasm.OpI32ShrU:
		return uint64(uint32(x) >> (y & 31)), true
	case wasm.OpI32Rotl:
		return rt.Rotl32(x, y), true
	case wasm.OpI32Rotr:
		return rt.Rotr32(x, y), true
	case wasm.OpI32Clz:
		return uint64(bits.LeadingZeros32(uint32(x))), true
	case wasm.OpI32Ctz:
		return uint64(bits.TrailingZeros32(uint32(x))), true
	case wasm.OpI32Popcnt:
		return uint64(bits.OnesCount32(uint32(x))), true
	case wasm.OpI64Add:
		return x + y, true
	case wasm.OpI64Sub:
		return x - y, true
	case wasm.OpI64Mul:
		return x * y, true
	case wasm.OpI64And:
		return x & y, true
	case wasm.OpI64Or:
		return x | y, true
	case wasm.OpI64Xor:
		return x ^ y, true
	case wasm.OpI64Shl:
		return x << (y & 63), true
	case wasm.OpI64ShrS:
		return uint64(int64(x) >> (y & 63)), true
	case wasm.OpI64ShrU:
		return x >> (y & 63), true
	case wasm.OpI64Rotl:
		return rt.Rotl64(x, y), true
	case wasm.OpI64Rotr:
		return rt.Rotr64(x, y), true
	case wasm.OpI64Clz:
		return uint64(bits.LeadingZeros64(x)), true
	case wasm.OpI64Ctz:
		return uint64(bits.TrailingZeros64(x)), true
	case wasm.OpI64Popcnt:
		return uint64(bits.OnesCount64(x)), true
	case wasm.OpF64Add:
		return rt.F64Bits(rt.F64(x) + rt.F64(y)), true
	case wasm.OpF64Sub:
		return rt.F64Bits(rt.F64(x) - rt.F64(y)), true
	case wasm.OpF64Mul:
		return rt.F64Bits(rt.F64(x) * rt.F64(y)), true
	case wasm.OpF64Div:
		return rt.F64Bits(rt.F64(x) / rt.F64(y)), true
	case wasm.OpF64Neg:
		return x ^ 0x8000000000000000, true
	case wasm.OpF64Abs:
		return x &^ 0x8000000000000000, true
	case wasm.OpF64Sqrt:
		return rt.F64Bits(math.Sqrt(rt.F64(x))), true
	case wasm.OpF32Add:
		return rt.F32Bits(rt.F32(x) + rt.F32(y)), true
	case wasm.OpF32Sub:
		return rt.F32Bits(rt.F32(x) - rt.F32(y)), true
	case wasm.OpF32Mul:
		return rt.F32Bits(rt.F32(x) * rt.F32(y)), true
	case wasm.OpF32Div:
		return rt.F32Bits(rt.F32(x) / rt.F32(y)), true
	case wasm.OpI32WrapI64:
		return uint64(uint32(x)), true
	case wasm.OpI64ExtendI32S:
		return uint64(int64(int32(uint32(x)))), true
	case wasm.OpI64ExtendI32U:
		return uint64(uint32(x)), true
	case wasm.OpF64ConvertI32S:
		return rt.F64Bits(float64(int32(uint32(x)))), true
	case wasm.OpF64ConvertI32U:
		return rt.F64Bits(float64(uint32(x))), true
	case wasm.OpF64ConvertI64S:
		return rt.F64Bits(float64(int64(x))), true
	case wasm.OpF64ConvertI64U:
		return rt.F64Bits(float64(x)), true
	case wasm.OpF64PromoteF32:
		return rt.F64Bits(float64(rt.F32(x))), true
	case wasm.OpF32DemoteF64:
		return rt.F32Bits(float32(rt.F64(x))), true
	case wasm.OpF32ConvertI32S:
		return rt.F32Bits(float32(int32(uint32(x)))), true
	case wasm.OpF32ConvertI64S:
		return rt.F32Bits(float32(int64(x))), true
	case wasm.OpI32ReinterpretF32, wasm.OpI64ReinterpretF64,
		wasm.OpF32ReinterpretI32, wasm.OpF64ReinterpretI64:
		return x, true
	case wasm.OpI32Extend8S:
		return uint64(uint32(int32(int8(uint8(x))))), true
	case wasm.OpI32Extend16S:
		return uint64(uint32(int32(int16(uint16(x))))), true
	case wasm.OpI64Extend8S:
		return uint64(int64(int8(uint8(x)))), true
	case wasm.OpI64Extend16S:
		return uint64(int64(int16(uint16(x)))), true
	case wasm.OpI64Extend32S:
		return uint64(int64(int32(uint32(x)))), true
	}
	return 0, false
}

// opKind classifies instructions for the generic pass machinery.
type opKind uint8

const (
	kindOther  opKind = iota // calls, branches, returns — handled specially
	kindBin                  // d ← a op b (pure unless trapping)
	kindUn                   // d ← op a
	kindConst                // d ← imm
	kindMove                 // d ← a
	kindLoad                 // d ← mem[a+imm]
	kindStore                // mem[a+imm] ← b
	kindSelect               // d ← regs[imm] ? a : b
)

// classify returns the kind plus whether the op may trap (and therefore must
// not be removed by DCE even when its result is dead).
func classify(op uint16) (opKind, bool) {
	switch op {
	case tMove:
		return kindMove, false
	case tSelect:
		return kindSelect, false
	case tMemoryGrow:
		return kindOther, false
	}
	if op >= 0x100 {
		return kindOther, false
	}
	wop := wasm.Opcode(op)
	switch wop {
	case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
		return kindConst, false
	}
	if wop >= wasm.OpI32Load && wop <= wasm.OpI64Load32U {
		return kindLoad, true
	}
	if wop >= wasm.OpI32Store && wop <= wasm.OpI64Store32 {
		return kindStore, true
	}
	if in, out, ok := wop.InOut(); ok {
		traps := false
		switch wop {
		case wasm.OpI32DivS, wasm.OpI32DivU, wasm.OpI32RemS, wasm.OpI32RemU,
			wasm.OpI64DivS, wasm.OpI64DivU, wasm.OpI64RemS, wasm.OpI64RemU,
			wasm.OpI32TruncF32S, wasm.OpI32TruncF32U, wasm.OpI32TruncF64S, wasm.OpI32TruncF64U,
			wasm.OpI64TruncF32S, wasm.OpI64TruncF32U, wasm.OpI64TruncF64S, wasm.OpI64TruncF64U:
			traps = true
		}
		if in == 2 && out == 1 {
			return kindBin, traps
		}
		if in == 1 && out == 1 {
			return kindUn, traps
		}
	}
	return kindOther, false
}
