package engine

import (
	"errors"
	"testing"
	"time"

	"wasmdb/internal/faultpoint"
	"wasmdb/internal/wasm"
)

// spinModule builds a module with a never-terminating "spin" function and a
// well-behaved "calc" function, the canonical runaway-guest scenario.
func spinModule() []byte {
	b := wasm.NewModuleBuilder()
	spin := b.NewFunc("spin", wasm.FuncType{})
	spin.Loop(wasm.BlockVoid)
	spin.Br(0)
	spin.End()
	b.Export("spin", wasm.ExternFunc, spin.Index)

	calc := b.NewFunc("calc", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	calc.LocalGet(0)
	calc.I64Const(1)
	calc.I64Add()
	b.Export("calc", wasm.ExternFunc, calc.Index)
	return b.Bytes()
}

func TestFuelExhaustionStopsSpinLoop(t *testing.T) {
	bin := spinModule()
	for _, tier := range tiers {
		m, err := New(Config{Tier: tier}).Compile(bin)
		if err != nil {
			t.Fatalf("%v compile: %v", tier, err)
		}
		if err := m.WaitOptimized(); err != nil {
			t.Fatal(err)
		}
		inst, err := m.Instantiate(Imports{})
		if err != nil {
			t.Fatal(err)
		}
		inst.SetFuel(10000)
		_, err = inst.Call("spin")
		if !errors.Is(err, ErrFuelExhausted) {
			t.Fatalf("%v: spin returned %v, want ErrFuelExhausted", tier, err)
		}
		if left := inst.FuelLeft(); left != 0 {
			t.Errorf("%v: FuelLeft after exhaustion = %d, want 0", tier, left)
		}
		// Re-fueling makes the instance usable again.
		inst.SetFuel(10000)
		if got := mustCall(t, inst, "calc", 41); got[0] != 42 {
			t.Errorf("%v: calc after re-fuel = %d, want 42", tier, got[0])
		}
		if left := inst.FuelLeft(); left <= 0 || left >= 10000 {
			t.Errorf("%v: FuelLeft after calc = %d, want in (0, 10000)", tier, left)
		}
		// Disabling metering restores unmetered execution.
		inst.SetFuel(0)
		if left := inst.FuelLeft(); left != -1 {
			t.Errorf("%v: FuelLeft unmetered = %d, want -1", tier, left)
		}
		mustCall(t, inst, "calc", 1)
	}
}

func TestInterruptStopsSpinLoop(t *testing.T) {
	bin := spinModule()
	for _, tier := range tiers {
		m, err := New(Config{Tier: tier}).Compile(bin)
		if err != nil {
			t.Fatalf("%v compile: %v", tier, err)
		}
		if err := m.WaitOptimized(); err != nil {
			t.Fatal(err)
		}
		inst, err := m.Instantiate(Imports{})
		if err != nil {
			t.Fatal(err)
		}
		inst.SetFuel(1 << 60) // effectively unlimited; metering = interruptible
		go func() {
			time.Sleep(10 * time.Millisecond)
			inst.Interrupt()
		}()
		_, err = inst.Call("spin")
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("%v: spin returned %v, want ErrInterrupted", tier, err)
		}
		// SetFuel clears the interrupt; the instance serves calls again.
		inst.SetFuel(1 << 60)
		if got := mustCall(t, inst, "calc", 1); got[0] != 2 {
			t.Errorf("%v: calc after interrupt = %d", tier, got[0])
		}
	}
}

func TestMemoryBudget(t *testing.T) {
	b := wasm.NewModuleBuilder()
	b.AddMemory(1, 200)
	grow := b.NewFunc("grow", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	grow.LocalGet(0)
	grow.Op(wasm.OpMemoryGrow)
	b.Export("grow", wasm.ExternFunc, grow.Index)
	bin := b.Bytes()

	for _, tier := range tiers {
		m, err := New(Config{Tier: tier}).Compile(bin)
		if err != nil {
			t.Fatalf("%v compile: %v", tier, err)
		}
		if err := m.WaitOptimized(); err != nil {
			t.Fatal(err)
		}
		inst, err := m.Instantiate(Imports{})
		if err != nil {
			t.Fatal(err)
		}
		inst.SetMemoryBudget(4)
		// Growth within the budget keeps normal wasm semantics.
		if got := mustCall(t, inst, "grow", 2); got[0] != 1 {
			t.Fatalf("%v: grow(2) = %d, want 1", tier, got[0])
		}
		// Growth past the budget is a typed trap, not a silent -1.
		_, err = inst.Call("grow", 10)
		if !errors.Is(err, ErrMemoryLimit) {
			t.Fatalf("%v: grow(10) returned %v, want ErrMemoryLimit", tier, err)
		}
		// The instance survives; wasm max semantics are unaffected.
		inst.SetMemoryBudget(0)
		if got := mustCall(t, inst, "grow", 1000); int32(uint32(got[0])) != -1 {
			t.Errorf("%v: grow past max = %d, want -1", tier, int32(uint32(got[0])))
		}
		if got := mustCall(t, inst, "grow", 0); got[0] != 3 {
			t.Errorf("%v: size = %d, want 3", tier, got[0])
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	bin := spinModule()
	m, err := New(Config{Tier: TierLiftoff}).Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Instantiate(Imports{})
	if err != nil {
		t.Fatal(err)
	}
	faultpoint.Enable("engine-call-panic", faultpoint.Always(errors.New("simulated engine bug")))
	_, err = inst.Call("calc", 1)
	faultpoint.Disable("engine-call-panic")
	var ee *EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("panic surfaced as %v (%T), want *EngineError", err, err)
	}
	if len(ee.Stack) == 0 {
		t.Error("EngineError carries no stack trace")
	}
	// The panic was contained and the instance remains usable.
	if got := mustCall(t, inst, "calc", 41); got[0] != 42 {
		t.Errorf("calc after isolated panic = %d, want 42", got[0])
	}
}

func TestTurbofanFailureDegradesToLiftoff(t *testing.T) {
	bin := spinModule()
	faultpoint.Enable("turbofan-compile", faultpoint.Always(errors.New("injected tier-2 failure")))
	defer faultpoint.Disable("turbofan-compile")

	// Adaptive: background tier-up fails, execution continues on liftoff.
	m, err := New(Config{Tier: TierAdaptive}).Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitOptimized(); err == nil {
		t.Error("WaitOptimized reported no error despite injected failure")
	}
	inst, err := m.Instantiate(Imports{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if got := mustCall(t, inst, "calc", int64ToU64(int64(k))); got[0] != uint64(k+1) {
			t.Fatalf("calc(%d) = %d under degraded tier", k, got[0])
		}
	}
	lo, tf := inst.TierCalls()
	if tf != 0 || lo != 5 {
		t.Errorf("tier calls = (liftoff %d, turbofan %d), want (5, 0)", lo, tf)
	}
	st := m.Stats()
	if st.TurbofanFailed != st.NumFuncs {
		t.Errorf("TurbofanFailed = %d, want %d (every function)", st.TurbofanFailed, st.NumFuncs)
	}

	// Synchronous turbofan tier: the failure is a compile error.
	if _, err := New(Config{Tier: TierTurbofan}).Compile(bin); err == nil {
		t.Error("TierTurbofan compile succeeded despite injected failure")
	}
}

func int64ToU64(v int64) uint64 { return uint64(v) }

// TestInstanceReuseAfterTrap pins down the env.Reset() path: after any trap —
// including call-stack exhaustion, which abandons deep frame state — the
// instance must serve subsequent calls with correct results under every tier.
func TestInstanceReuseAfterTrap(t *testing.T) {
	b := wasm.NewModuleBuilder()
	b.AddMemory(1, 1)
	div := b.NewFunc("div", wasm.FuncType{Params: []wasm.ValType{wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	div.LocalGet(0)
	div.LocalGet(1)
	div.Op(wasm.OpI64DivS)
	b.Export("div", wasm.ExternFunc, div.Index)

	rec := b.NewFunc("rec", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	rec.LocalGet(0)
	rec.I64Const(0)
	rec.Op(wasm.OpI64LeS)
	rec.If(wasm.BlockOf(wasm.I64))
	rec.I64Const(0)
	rec.Else()
	rec.LocalGet(0)
	rec.I64Const(1)
	rec.I64Sub()
	rec.CallBuilder(rec)
	rec.LocalGet(0)
	rec.I64Add()
	rec.End()
	b.Export("rec", wasm.ExternFunc, rec.Index)

	oob := b.NewFunc("oob", wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	oob.I32Const(1 << 24)
	oob.I64Load(0)
	b.Export("oob", wasm.ExternFunc, oob.Index)
	bin := b.Bytes()

	for _, tier := range tiers {
		m, err := New(Config{Tier: tier}).Compile(bin)
		if err != nil {
			t.Fatalf("%v compile: %v", tier, err)
		}
		if err := m.WaitOptimized(); err != nil {
			t.Fatal(err)
		}
		inst, err := m.Instantiate(Imports{})
		if err != nil {
			t.Fatal(err)
		}
		check := func(stage string) {
			t.Helper()
			if got := mustCall(t, inst, "div", 84, 2); got[0] != 42 {
				t.Fatalf("%v after %s: div = %d", tier, stage, got[0])
			}
			// Recursion must reach its full depth again — proof that the
			// trap's unwinding reset Depth and the frame arena.
			if got := mustCall(t, inst, "rec", 1000); got[0] != 1000*1001/2 {
				t.Fatalf("%v after %s: rec = %d", tier, stage, got[0])
			}
		}
		check("start")
		if _, err := inst.Call("div", 1, 0); err == nil {
			t.Fatalf("%v: div by zero did not trap", tier)
		}
		check("div trap")
		if _, err := inst.Call("rec", 1<<40); err == nil {
			t.Fatalf("%v: unbounded recursion did not trap", tier)
		}
		check("stack exhaustion")
		if _, err := inst.Call("oob"); err == nil {
			t.Fatalf("%v: oob load did not trap", tier)
		}
		check("memory trap")
		inst.SetFuel(100)
		if _, err := inst.Call("rec", 1<<40); !errors.Is(err, ErrFuelExhausted) {
			t.Fatalf("%v: fueled recursion returned %v", tier, err)
		}
		inst.SetFuel(0)
		check("fuel exhaustion")
	}
}
