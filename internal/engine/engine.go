// Package engine is the embeddable WebAssembly execution engine — the
// stand-in for V8 in the paper's architecture (§2.2). It decodes and
// validates binary modules, compiles every function with the fast baseline
// tier (liftoff), optionally compiles with the optimizing tier (turbofan) —
// synchronously or concurrently in the background — and dispatches each call
// to the best code available at that moment. Background tier-up replaces
// code at function granularity via an atomic pointer swap, so a query that
// invokes its pipeline function once per morsel transparently migrates from
// baseline to optimized code mid-query, exactly the adaptive execution the
// paper delegates to the engine.
package engine

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"wasmdb/internal/engine/liftoff"
	"wasmdb/internal/engine/rt"
	"wasmdb/internal/engine/turbofan"
	"wasmdb/internal/engine/wmem"
	"wasmdb/internal/faultpoint"
	"wasmdb/internal/obs"
	"wasmdb/internal/wasm"
)

// Process-wide engine metrics, resolved once so recording is atomic-only.
var (
	mCompilesLiftoff  = obs.Default.Counter(obs.MetricCompiles + ".liftoff")
	mCompilesTurbofan = obs.Default.Counter(obs.MetricCompiles + ".turbofan")
	mTurbofanFailures = obs.Default.Counter(obs.MetricTurbofanFailures)
	mTierUpLatency    = obs.Default.Histogram(obs.MetricTierUpLatency)
	// Per-module compile latency, labeled by the tier that did the work —
	// the SLO view of "how much am I paying before (liftoff) and behind
	// (turbofan) the first morsel".
	hCompileLiftoff  = obs.Default.HistogramWith(obs.MetricEngineCompileLatency, obs.Label{Key: "tier", Val: "liftoff"})
	hCompileTurbofan = obs.Default.HistogramWith(obs.MetricEngineCompileLatency, obs.Label{Key: "tier", Val: "turbofan"})
)

// Typed guardrail sentinels, re-exported so embedders need not import the
// runtime packages. Match with errors.Is against any error returned from
// Instance calls.
var (
	// ErrFuelExhausted reports that an instance ran out of its SetFuel budget.
	ErrFuelExhausted = rt.ErrFuelExhausted
	// ErrInterrupted reports that Interrupt stopped the instance mid-call.
	ErrInterrupted = rt.ErrInterrupted
	// ErrMemoryLimit reports that a SetMemoryBudget heap budget was exceeded.
	ErrMemoryLimit = wmem.ErrMemoryLimit
)

// EngineError wraps a panic that escaped guest or engine code without being a
// recognized trap — an engine bug rather than a guest fault. The call
// boundary converts it into an error so one bad query cannot take down the
// host process, and Stack preserves the evidence.
type EngineError struct {
	Val   any
	Stack []byte
}

func (e *EngineError) Error() string {
	return fmt.Sprintf("engine: internal panic: %v", e.Val)
}

// Tier selects the compilation strategy.
type Tier int

// Available tiers.
const (
	// TierAdaptive compiles with liftoff synchronously and with turbofan in
	// the background, swapping code in as it becomes ready (the default,
	// mirroring V8's Liftoff→TurboFan pipeline).
	TierAdaptive Tier = iota
	// TierLiftoff uses only the baseline compiler.
	TierLiftoff
	// TierTurbofan compiles everything with the optimizing compiler before
	// execution begins.
	TierTurbofan
)

func (t Tier) String() string {
	switch t {
	case TierAdaptive:
		return "adaptive"
	case TierLiftoff:
		return "liftoff"
	case TierTurbofan:
		return "turbofan"
	}
	return "unknown"
}

// Config configures an Engine.
type Config struct {
	Tier Tier
	// OptRounds overrides the optimizing tier's optimization budget
	// (default turbofan.DefaultOptRounds). Large values model heavier,
	// LLVM-grade compilation pipelines (used by the HyPer-like baseline).
	OptRounds int
	// TierPolicy, when non-nil under TierAdaptive, gates background
	// optimization per compiled module: Compile consults it once with the
	// module's function count and binary size, and a false return leaves
	// the module on baseline code — deferred, not forbidden — until
	// Module.EnsureOptimizing is called. This is the hook the autopilot's
	// liftoff-only decision uses: the module keeps its adaptive identity
	// (and plan-cache fingerprint), so a later feedback-corrected adaptive
	// decision on the same cached module can still kick tier-up.
	TierPolicy func(numFuncs, codeBytes int) bool
}

// Engine compiles modules. It is stateless and safe for concurrent use.
type Engine struct {
	cfg Config
}

// New creates an engine.
func New(cfg Config) *Engine { return &Engine{cfg: cfg} }

func (e *Engine) optRounds() int {
	if e.cfg.OptRounds > 0 {
		return e.cfg.OptRounds
	}
	return turbofan.DefaultOptRounds
}

// CompileStats records the cost of each compilation phase.
type CompileStats struct {
	Decode   time.Duration
	Validate time.Duration
	Liftoff  time.Duration
	// Turbofan is the optimizing-tier compile time. Under TierAdaptive it is
	// measured on the background goroutine and is valid after WaitOptimized.
	Turbofan  time.Duration
	CodeBytes int
	NumFuncs  int
	// TurbofanFailed counts functions whose background optimizing compile
	// failed (error or panic); those functions keep serving liftoff code.
	TurbofanFailed int
}

// safeTurbofanCompile runs the optimizing compiler with panic isolation: a
// compiler bug on one function must degrade that function to baseline code,
// not crash the process (under TierAdaptive the compile runs on a background
// goroutine, where an escaped panic is fatal). The "turbofan-compile" fault
// point lets tests force a failure here.
func safeTurbofanCompile(m *wasm.Module, fn *wasm.Func, rounds int) (c rt.Callee, err error) {
	if ferr := faultpoint.Hit("turbofan-compile"); ferr != nil {
		return nil, ferr
	}
	defer func() {
		if r := recover(); r != nil {
			c, err = nil, &EngineError{Val: r, Stack: debug.Stack()}
		}
	}()
	return turbofan.CompileRounds(m, fn, rounds)
}

// guestFunc dispatches calls to the best available code for one function.
type guestFunc struct {
	code atomic.Pointer[tiered]
}

type tiered struct {
	tier Tier
	c    rt.Callee
}

// Call implements rt.Callee.
func (g *guestFunc) Call(env *rt.Env, args, res []uint64) {
	g.code.Load().c.Call(env, args, res)
}

// Module is a compiled module ready for instantiation.
type Module struct {
	wmod  *wasm.Module
	funcs []*guestFunc
	// tr is the query trace the module records compile spans and tier-up
	// events into (nil when compiled without one). The background optimizer
	// and instances share it.
	tr *obs.Trace

	mu        sync.Mutex
	stats     CompileStats
	optimized chan struct{}
	optErr    error

	// Adaptive-tier bookkeeping for deferred background optimization:
	// adaptive marks the module as tier-up capable, optStart makes the kick
	// idempotent, optStarted lets WaitOptimized distinguish "deferred, never
	// kicked" (return immediately) from "running" (block), and optRounds
	// carries the engine's budget to the background compile.
	adaptive   bool
	optStart   sync.Once
	optStarted atomic.Bool
	optRounds  int
}

// Compile decodes, validates, and compiles a binary module according to the
// engine's tier configuration.
func (e *Engine) Compile(bin []byte) (*Module, error) {
	return e.CompileTraced(bin, nil)
}

// CompileTraced is Compile recording phase spans (decode, validate, liftoff,
// turbofan) and tier-up events into tr. tr may be nil.
func (e *Engine) CompileTraced(bin []byte, tr *obs.Trace) (*Module, error) {
	t0 := time.Now()
	wmod, err := wasm.Decode(bin)
	t1 := time.Now()
	tr.AddSpan(obs.SpanDecode, t0, t1.Sub(t0))
	if err != nil {
		return nil, err
	}
	verr := wasm.Validate(wmod)
	t2 := time.Now()
	tr.AddSpan(obs.SpanValidate, t1, t2.Sub(t1))
	if verr != nil {
		return nil, verr
	}

	m := &Module{wmod: wmod, tr: tr, optimized: make(chan struct{})}
	m.stats.Decode = t1.Sub(t0)
	m.stats.Validate = t2.Sub(t1)
	m.stats.CodeBytes = len(bin)
	m.stats.NumFuncs = len(wmod.Funcs)

	switch e.cfg.Tier {
	case TierTurbofan:
		sp := tr.Begin(obs.SpanTurbofan)
		start := time.Now()
		for i := range wmod.Funcs {
			tf, err := safeTurbofanCompile(wmod, &wmod.Funcs[i], e.optRounds())
			if err != nil {
				return nil, err
			}
			g := &guestFunc{}
			g.code.Store(&tiered{tier: TierTurbofan, c: tf})
			m.funcs = append(m.funcs, g)
		}
		m.stats.Turbofan = time.Since(start)
		mCompilesTurbofan.Add(int64(len(wmod.Funcs)))
		hCompileTurbofan.Observe(m.stats.Turbofan.Nanoseconds())
		sp.End(obs.I("funcs", int64(len(wmod.Funcs))))
		close(m.optimized)
	default:
		sp := tr.Begin(obs.SpanLiftoff)
		start := time.Now()
		for i := range wmod.Funcs {
			lo, err := liftoff.Compile(wmod, &wmod.Funcs[i])
			if err != nil {
				return nil, err
			}
			g := &guestFunc{}
			g.code.Store(&tiered{tier: TierLiftoff, c: lo})
			m.funcs = append(m.funcs, g)
		}
		m.stats.Liftoff = time.Since(start)
		mCompilesLiftoff.Add(int64(len(wmod.Funcs)))
		hCompileLiftoff.Observe(m.stats.Liftoff.Nanoseconds())
		sp.End(obs.I("funcs", int64(len(wmod.Funcs))))
		if e.cfg.Tier == TierAdaptive {
			m.adaptive = true
			m.optRounds = e.optRounds()
			if e.cfg.TierPolicy == nil || e.cfg.TierPolicy(len(wmod.Funcs), len(bin)) {
				m.EnsureOptimizing()
			}
		} else {
			close(m.optimized)
		}
	}
	return m, nil
}

// EnsureOptimizing starts an adaptive module's background optimization if it
// has not started yet — the tier-up kick for modules whose compile-time
// TierPolicy deferred it. Idempotent and safe for concurrent use; a no-op
// for non-adaptive modules, whose tier was final at compile time.
func (m *Module) EnsureOptimizing() {
	if !m.adaptive {
		return
	}
	m.optStart.Do(func() {
		m.optStarted.Store(true)
		go m.optimize(m.optRounds)
	})
}

// optimize runs turbofan over every function in the background, publishing
// each one as it completes. Each publish is a tier-up event stamped with
// the morsel count at that moment — the observable timeline of adaptive
// code replacement.
func (m *Module) optimize(rounds int) {
	sp := m.tr.Begin(obs.SpanTurbofan)
	start := time.Now()
	var firstErr error
	failed := 0
	for i := range m.wmod.Funcs {
		tf, err := safeTurbofanCompile(m.wmod, &m.wmod.Funcs[i], rounds)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			failed++
			mTurbofanFailures.Add(1)
			continue // keep running on liftoff code
		}
		m.funcs[i].code.Store(&tiered{tier: TierTurbofan, c: tf})
		mCompilesTurbofan.Add(1)
		mTierUpLatency.Observe(time.Since(start).Nanoseconds())
		if m.tr != nil {
			m.tr.Event(obs.EvTierUp, obs.I("func", int64(i)), obs.I("morsel", m.tr.MorselCount()))
		}
	}
	sp.End(obs.I("funcs", int64(len(m.wmod.Funcs))), obs.I("failed", int64(failed)))
	hCompileTurbofan.Observe(time.Since(start).Nanoseconds())
	m.mu.Lock()
	m.stats.Turbofan = time.Since(start)
	m.stats.TurbofanFailed = failed
	m.optErr = firstErr
	m.mu.Unlock()
	close(m.optimized)
}

// Optimized reports, without blocking, whether background optimization has
// finished — on an adaptive module that has been alive a while (a plan-cache
// hit), true means calls dispatch straight to turbofan code.
func (m *Module) Optimized() bool {
	select {
	case <-m.optimized:
		return true
	default:
		return false
	}
}

// WaitOptimized blocks until background optimization has finished (it
// returns immediately for non-adaptive tiers) and reports any compile error;
// execution continues on baseline code for functions that failed. An
// adaptive module whose TierPolicy deferred optimization and that was never
// kicked has no background work to wait for and returns immediately.
func (m *Module) WaitOptimized() error {
	if m.adaptive && !m.optStarted.Load() {
		return nil
	}
	<-m.optimized
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.optErr
}

// Stats returns the compile statistics gathered so far.
func (m *Module) Stats() CompileStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Imports supplies the host side of a module's imports.
type Imports struct {
	// Funcs maps "module.name" to host implementations.
	Funcs map[string]*rt.HostFunc
	// Memory satisfies a memory import — this is the SetModuleMemory() of
	// the paper: the instance operates directly on host-managed memory.
	Memory *wmem.Memory
}

// Instance is an instantiated module.
type Instance struct {
	mod *Module
	env *rt.Env

	// tr receives this instance's tier-switch events. It defaults to the
	// module's compile trace but can differ when a cached module is shared
	// across queries (InstantiateWithTrace) — each execution's events land
	// on its own trace.
	tr *obs.Trace

	// Per-tier counts of exported calls, for observing adaptive switching.
	callsLiftoff  atomic.Uint64
	callsTurbofan atomic.Uint64
	// tierSeen marks functions whose first turbofan-served call was already
	// recorded as a tier-switch event. Allocated only when the instance
	// carries a trace, so untraced dispatch pays nothing.
	tierSeen []atomic.Bool
}

// Instantiate links a compiled module against imports, initializes globals,
// table, and data segments, and runs the start function if present. The
// instance reports tier-switch events to the module's compile trace.
func (m *Module) Instantiate(imp Imports) (*Instance, error) {
	return m.InstantiateWithTrace(imp, m.tr)
}

// InstantiateWithTrace is Instantiate with the instance's tier-switch events
// routed to tr instead of the module's compile trace — the shape a plan
// cache needs, where one compiled module outlives the query that compiled it
// and each execution records into its own trace. tr may be nil.
func (m *Module) InstantiateWithTrace(imp Imports, tr *obs.Trace) (*Instance, error) {
	wm := m.wmod
	env := &rt.Env{Types: wm.Types}

	// Resolve imports.
	for _, im := range wm.Imports {
		switch im.Kind {
		case wasm.ExternFunc:
			key := im.Module + "." + im.Name
			hf := imp.Funcs[key]
			if hf == nil {
				return nil, fmt.Errorf("engine: unresolved function import %q", key)
			}
			if !hf.Type.Equal(wm.Types[im.Type]) {
				return nil, fmt.Errorf("engine: import %q signature mismatch: host %v, module %v", key, hf.Type, wm.Types[im.Type])
			}
			env.Funcs = append(env.Funcs, hf)
			env.FuncTypes = append(env.FuncTypes, im.Type)
		case wasm.ExternMemory:
			if imp.Memory == nil {
				return nil, errors.New("engine: module imports memory but none provided")
			}
			if imp.Memory.Pages() < im.Mem.Min {
				return nil, fmt.Errorf("engine: imported memory has %d pages, module requires %d", imp.Memory.Pages(), im.Mem.Min)
			}
			env.Mem = imp.Memory
		case wasm.ExternGlobal, wasm.ExternTable:
			return nil, errors.New("engine: global/table imports not supported")
		}
	}
	for i, g := range m.funcs {
		env.Funcs = append(env.Funcs, g)
		env.FuncTypes = append(env.FuncTypes, wm.Funcs[i].Type)
	}

	// Memory.
	if wm.HasMemory {
		if env.Mem != nil {
			return nil, errors.New("engine: module both imports and defines memory")
		}
		maxPages := wm.Memory.Max
		if !wm.Memory.HasMax {
			maxPages = 65536
		}
		env.Mem = wmem.New(wm.Memory.Min, maxPages)
	}

	// Globals.
	for _, g := range wm.Globals {
		env.Globals = append(env.Globals, g.Init)
	}

	// Table and element segments.
	if wm.HasTable {
		env.Table = make([]uint32, wm.TableMin)
		for i := range env.Table {
			env.Table[i] = ^uint32(0)
		}
		for _, seg := range wm.Elems {
			if int(seg.Offset)+len(seg.Funcs) > len(env.Table) {
				return nil, errors.New("engine: element segment out of bounds")
			}
			copy(env.Table[seg.Offset:], seg.Funcs)
		}
	}

	// Data segments.
	for _, d := range wm.Data {
		if env.Mem == nil {
			return nil, errors.New("engine: data segment without memory")
		}
		if uint64(d.Offset)+uint64(len(d.Bytes)) > uint64(env.Mem.Pages())*wmem.PageSize {
			return nil, errors.New("engine: data segment out of bounds")
		}
		env.Mem.WriteBytes(d.Offset, d.Bytes)
	}

	inst := &Instance{mod: m, env: env, tr: tr}
	if tr != nil {
		inst.tierSeen = make([]atomic.Bool, len(env.Funcs))
	}
	if wm.Start >= 0 {
		if _, err := inst.CallIndex(uint32(wm.Start)); err != nil {
			return nil, fmt.Errorf("engine: start function: %w", err)
		}
	}
	return inst, nil
}

// Memory returns the instance's linear memory.
func (i *Instance) Memory() *wmem.Memory { return i.env.Mem }

// Global returns the current value of a module-defined global.
func (i *Instance) Global(idx int) uint64 { return i.env.Globals[idx] }

// SetGlobal overwrites a module-defined global. It is the host side of the
// parallel executor's merge pass: partial aggregate states read from worker
// instances are combined and written back into one instance before its
// output pipeline runs. Callers must not race it with a running call on the
// same instance.
func (i *Instance) SetGlobal(idx int, v uint64) { i.env.Globals[idx] = v }

// Call invokes an exported function by name. Raw 64-bit argument and result
// values follow the wasm value representation.
func (i *Instance) Call(name string, args ...uint64) ([]uint64, error) {
	idx, ok := i.mod.wmod.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("engine: no exported function %q", name)
	}
	return i.CallIndex(idx, args...)
}

// CallIndex invokes a function by index.
func (i *Instance) CallIndex(idx uint32, args ...uint64) (results []uint64, err error) {
	if idx >= uint32(len(i.env.Funcs)) {
		return nil, fmt.Errorf("engine: function index %d out of range", idx)
	}
	ft := i.mod.wmod.Types[i.env.FuncTypes[idx]]
	if len(args) != len(ft.Params) {
		return nil, fmt.Errorf("engine: function expects %d arguments, got %d", len(ft.Params), len(args))
	}
	// Record which tier serves this call, for adaptive-execution stats.
	if g, ok := i.env.Funcs[idx].(*guestFunc); ok {
		if g.code.Load().tier == TierTurbofan {
			i.callsTurbofan.Add(1)
			// First turbofan-served call of a traced function marks the
			// moment dispatch actually switched tiers (tier-up is when the
			// code was published; this is when it started running).
			if i.tierSeen != nil && !i.tierSeen[idx].Swap(true) {
				i.tr.Event(obs.EvTierSwitch,
					obs.I("func", int64(idx)), obs.I("morsel", i.tr.MorselCount()))
			}
		} else {
			i.callsLiftoff.Add(1)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			switch t := r.(type) {
			case *rt.TrapError:
				err = t
			case *wmem.Trap:
				err = t
			default:
				// Unknown panic: an engine bug, not a guest trap. Contain it
				// as a typed error with the stack instead of crashing the
				// host; Reset below leaves the instance reusable.
				err = &EngineError{Val: r, Stack: debug.Stack()}
			}
			i.env.Reset()
		}
	}()
	if ferr := faultpoint.Hit("engine-call-panic"); ferr != nil {
		panic(ferr.Error())
	}
	res := make([]uint64, len(ft.Results))
	i.env.Funcs[idx].Call(i.env, args, res)
	return res, nil
}

// SetFuel installs an execution budget of n units on the instance (n <= 0
// disables metering) and clears any pending interrupt. Fuel is charged per
// function entry and per taken loop back-edge; exhaustion traps the current
// call with ErrFuelExhausted and the instance stays usable after re-fueling.
func (i *Instance) SetFuel(n int64) { i.env.SetFuel(n) }

// FuelLeft reports the remaining fuel (-1 when unmetered).
func (i *Instance) FuelLeft() int64 { return i.env.FuelLeft() }

// Interrupt stops a metered instance at its next fuel check, trapping the
// in-flight call with ErrInterrupted. Safe to call from another goroutine —
// it is how context cancellation reaches inside a running morsel.
func (i *Instance) Interrupt() { i.env.Interrupt() }

// SetMemoryBudget caps the instance's linear memory at the given total size
// in pages; a memory.grow beyond it traps with ErrMemoryLimit. Zero removes
// the budget. No-op for instances without memory.
func (i *Instance) SetMemoryBudget(pages uint32) {
	if i.env.Mem != nil {
		i.env.Mem.SetBudget(pages)
	}
}

// TierCalls reports how many exported calls were served by each tier since
// instantiation — the observable trace of adaptive code replacement.
func (i *Instance) TierCalls() (liftoffCalls, turbofanCalls uint64) {
	return i.callsLiftoff.Load(), i.callsTurbofan.Load()
}

// WaitOptimized blocks until the instance's module finished background
// optimization.
func (i *Instance) WaitOptimized() error { return i.mod.WaitOptimized() }
