package liftoff

import (
	"testing"

	"wasmdb/internal/engine/rt"
	"wasmdb/internal/wasm"
)

// compileOne builds a single-function module and compiles it.
func compileOne(t *testing.T, build func(f *wasm.FuncBuilder), ft wasm.FuncType) *Code {
	t.Helper()
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("f", ft)
	build(f)
	m := b.Module()
	if err := wasm.Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	c, err := Compile(m, &m.Funcs[0])
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func call1(t *testing.T, c *Code, args ...uint64) uint64 {
	t.Helper()
	env := &rt.Env{Funcs: []rt.Callee{c}}
	res := make([]uint64, c.NResults)
	c.Call(env, args, res)
	if len(res) == 0 {
		return 0
	}
	return res[0]
}

func TestDeadCodeSkipped(t *testing.T) {
	// Code after br is dead and must not be translated into the stream in a
	// way that breaks heights.
	c := compileOne(t, func(f *wasm.FuncBuilder) {
		f.Block(wasm.BlockOf(wasm.I32))
		f.I32Const(1)
		f.Br(0)
		// dead, stack-polymorphic garbage
		f.I32Add()
		f.I32Add()
		f.End()
	}, wasm.FuncType{Results: []wasm.ValType{wasm.I32}})
	if got := call1(t, c); got != 1 {
		t.Errorf("got %d", got)
	}
}

func TestIfWithoutElseDead(t *testing.T) {
	// then-arm ends in br; the false path must fall through to end.
	c := compileOne(t, func(f *wasm.FuncBuilder) {
		out := f.AddLocal(wasm.I32)
		f.Block(wasm.BlockVoid)
		f.LocalGet(0)
		f.If(wasm.BlockVoid)
		f.I32Const(10)
		f.LocalSet(out)
		f.Br(1)
		f.End()
		f.I32Const(20)
		f.LocalSet(out)
		f.End()
		f.LocalGet(out)
	}, wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	if got := call1(t, c, 1); got != 10 {
		t.Errorf("taken: %d", got)
	}
	if got := call1(t, c, 0); got != 20 {
		t.Errorf("not taken: %d", got)
	}
}

func TestBranchWithValueUnwinding(t *testing.T) {
	// br carrying a value out of a block with extra stack entries forces
	// the unwind path.
	c := compileOne(t, func(f *wasm.FuncBuilder) {
		f.Block(wasm.BlockOf(wasm.I32))
		f.I32Const(7) // extra stack entry below the result
		f.I32Const(42)
		f.LocalGet(0)
		f.BrIf(0)  // if p0: return 42 with height mismatch → unwind
		f.I32Add() // else 7+42 = 49
		f.End()
	}, wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	if got := call1(t, c, 1); got != 42 {
		t.Errorf("taken: %d", got)
	}
	if got := call1(t, c, 0); got != 49 {
		t.Errorf("fallthrough: %d", got)
	}
}

func TestNestedLoops(t *testing.T) {
	// sum of i*j for i,j in [0,n)
	c := compileOne(t, func(f *wasm.FuncBuilder) {
		n := f.Param(0)
		i := f.AddLocal(wasm.I64)
		j := f.AddLocal(wasm.I64)
		acc := f.AddLocal(wasm.I64)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(i)
		f.LocalGet(n)
		f.Op(wasm.OpI64GeS)
		f.BrIf(1)
		f.I64Const(0)
		f.LocalSet(j)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(j)
		f.LocalGet(n)
		f.Op(wasm.OpI64GeS)
		f.BrIf(1)
		f.LocalGet(acc)
		f.LocalGet(i)
		f.LocalGet(j)
		f.I64Mul()
		f.I64Add()
		f.LocalSet(acc)
		f.LocalGet(j)
		f.I64Const(1)
		f.I64Add()
		f.LocalSet(j)
		f.Br(0)
		f.End()
		f.End()
		f.LocalGet(i)
		f.I64Const(1)
		f.I64Add()
		f.LocalSet(i)
		f.Br(0)
		f.End()
		f.End()
		f.LocalGet(acc)
	}, wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	n := int64(20)
	want := uint64((n * (n - 1) / 2) * (n * (n - 1) / 2))
	if got := call1(t, c, uint64(n)); got != want {
		t.Errorf("got %d want %d", got, want)
	}
}

func TestCompileIsCheap(t *testing.T) {
	// The baseline tier is a single pass: instruction count of the output
	// must be O(input) and MaxStack must be bounded.
	c := compileOne(t, func(f *wasm.FuncBuilder) {
		for i := 0; i < 100; i++ {
			f.I32Const(int32(i))
			f.Drop()
		}
		f.I32Const(0)
	}, wasm.FuncType{Results: []wasm.ValType{wasm.I32}})
	if len(c.ins) > 250 {
		t.Errorf("instruction blowup: %d", len(c.ins))
	}
	if c.MaxStack > 4 {
		t.Errorf("MaxStack = %d", c.MaxStack)
	}
}
