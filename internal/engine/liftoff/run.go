package liftoff

import (
	"math"
	"math/bits"

	"wasmdb/internal/engine/rt"
	"wasmdb/internal/wasm"
)

// Call executes the function with the given arguments, implementing
// rt.Callee. Locals and the operand stack live in a frame carved from the
// environment's shared arena; traps propagate as panics recovered by the
// engine at the instance boundary.
func (c *Code) Call(env *rt.Env, args, res []uint64) {
	env.Enter()
	frame := env.Frame(c.NLocals + c.MaxStack)
	copy(frame, args[:c.NParams])
	c.run(env, frame)
	copy(res, frame[c.NLocals:c.NLocals+c.NResults])
	env.PopFrame(c.NLocals + c.MaxStack)
	env.Exit()
}

func (c *Code) run(env *rt.Env, frame []uint64) {
	locals := frame
	stack := frame[c.NLocals:]
	mem := env.Mem
	var pages [][]byte
	if mem != nil {
		pages = mem.PageSlice()
	}
	ins := c.ins
	sp := 0
	pc := 0
	for {
		in := ins[pc]
		switch in.op {
		// Control. Taken backward jumps (loop back-edges) charge fuel so a
		// runaway loop in generated code stays interruptible.
		case uint16(wasm.OpUnreachable):
			rt.Trap("unreachable executed")
		case opJump:
			if env.Metered && int(in.a) <= pc {
				env.UseFuel(1)
			}
			pc = int(in.a)
			continue
		case opJumpIfZero:
			sp--
			if stack[sp] == 0 {
				if env.Metered && int(in.a) <= pc {
					env.UseFuel(1)
				}
				pc = int(in.a)
				continue
			}
		case opJumpIfNot:
			sp--
			if stack[sp] != 0 {
				if env.Metered && int(in.a) <= pc {
					env.UseFuel(1)
				}
				pc = int(in.a)
				continue
			}
		case opBrUnwind:
			h, ar := int(in.b>>8), int(in.b&0xFF)
			copy(stack[h:h+ar], stack[sp-ar:sp])
			sp = h + ar
			if env.Metered && int(in.a) <= pc {
				env.UseFuel(1)
			}
			pc = int(in.a)
			continue
		case opBrIfUnwind:
			sp--
			if stack[sp] != 0 {
				h, ar := int(in.b>>8), int(in.b&0xFF)
				copy(stack[h:h+ar], stack[sp-ar:sp])
				sp = h + ar
				if env.Metered && int(in.a) <= pc {
					env.UseFuel(1)
				}
				pc = int(in.a)
				continue
			}
		case opBrTable:
			sp--
			tbl := c.tables[in.a]
			i := int(uint32(stack[sp]))
			if i >= len(tbl)-1 {
				i = len(tbl) - 1
			}
			t := tbl[i]
			h, ar := int(t.height), int(t.arity)
			copy(stack[h:h+ar], stack[sp-ar:sp])
			sp = h + ar
			if env.Metered && int(t.pc) <= pc {
				env.UseFuel(1)
			}
			pc = int(t.pc)
			continue
		case opRet:
			// Move results to the bottom of the operand area for Call.
			copy(stack[:c.NResults], stack[sp-c.NResults:sp])
			return
		case uint16(wasm.OpCall):
			np, nr := int(in.b>>8), int(in.b&0xFF)
			callee := env.Funcs[in.a]
			callee.Call(env, stack[sp-np:sp], stack[sp-np:sp-np+nr])
			sp += nr - np
			if mem != nil {
				pages = mem.PageSlice()
			}
		case uint16(wasm.OpCallIndirect):
			sp--
			ti := uint32(stack[sp])
			np, nr := int(in.b>>8), int(in.b&0xFF)
			if ti >= uint32(len(env.Table)) {
				rt.Trap("undefined element in call_indirect")
			}
			fi := env.Table[ti]
			if fi == ^uint32(0) {
				rt.Trap("uninitialized element in call_indirect")
			}
			if !env.Types[env.FuncTypes[fi]].Equal(env.Types[in.a]) {
				rt.Trap("indirect call type mismatch")
			}
			callee := env.Funcs[fi]
			callee.Call(env, stack[sp-np:sp], stack[sp-np:sp-np+nr])
			sp += nr - np
			if mem != nil {
				pages = mem.PageSlice()
			}

		// Parametric.
		case uint16(wasm.OpDrop):
			sp--
		case uint16(wasm.OpSelect):
			sp -= 2
			if stack[sp+1] == 0 {
				stack[sp-1] = stack[sp]
			}

		// Variables.
		case uint16(wasm.OpLocalGet):
			stack[sp] = locals[in.a]
			sp++
		case uint16(wasm.OpLocalSet):
			sp--
			locals[in.a] = stack[sp]
		case uint16(wasm.OpLocalTee):
			locals[in.a] = stack[sp-1]
		case uint16(wasm.OpGlobalGet):
			stack[sp] = env.Globals[in.a]
			sp++
		case uint16(wasm.OpGlobalSet):
			sp--
			env.Globals[in.a] = stack[sp]

		// Memory.
		case uint16(wasm.OpI32Load):
			stack[sp-1] = uint64(rt.LdU32(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 4)))
		case uint16(wasm.OpI64Load):
			stack[sp-1] = rt.LdU64(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 8))
		case uint16(wasm.OpF32Load):
			stack[sp-1] = uint64(rt.LdU32(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 4)))
		case uint16(wasm.OpF64Load):
			stack[sp-1] = rt.LdU64(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 8))
		case uint16(wasm.OpI32Load8S):
			stack[sp-1] = uint64(uint32(int32(int8(rt.LdU8(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 1))))))
		case uint16(wasm.OpI32Load8U):
			stack[sp-1] = uint64(rt.LdU8(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 1)))
		case uint16(wasm.OpI32Load16S):
			stack[sp-1] = uint64(uint32(int32(int16(rt.LdU16(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 2))))))
		case uint16(wasm.OpI32Load16U):
			stack[sp-1] = uint64(rt.LdU16(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 2)))
		case uint16(wasm.OpI64Load8S):
			stack[sp-1] = uint64(int64(int8(rt.LdU8(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 1)))))
		case uint16(wasm.OpI64Load8U):
			stack[sp-1] = uint64(rt.LdU8(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 1)))
		case uint16(wasm.OpI64Load16S):
			stack[sp-1] = uint64(int64(int16(rt.LdU16(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 2)))))
		case uint16(wasm.OpI64Load16U):
			stack[sp-1] = uint64(rt.LdU16(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 2)))
		case uint16(wasm.OpI64Load32S):
			stack[sp-1] = uint64(int64(int32(rt.LdU32(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 4)))))
		case uint16(wasm.OpI64Load32U):
			stack[sp-1] = uint64(rt.LdU32(pages, mem, rt.CheckAddr(stack[sp-1], in.a, 4)))
		case uint16(wasm.OpI32Store), uint16(wasm.OpF32Store):
			sp -= 2
			rt.StU32(pages, mem, rt.CheckAddr(stack[sp], in.a, 4), uint32(stack[sp+1]))
		case uint16(wasm.OpI64Store), uint16(wasm.OpF64Store):
			sp -= 2
			rt.StU64(pages, mem, rt.CheckAddr(stack[sp], in.a, 8), stack[sp+1])
		case uint16(wasm.OpI32Store8), uint16(wasm.OpI64Store8):
			sp -= 2
			rt.StU8(pages, mem, rt.CheckAddr(stack[sp], in.a, 1), byte(stack[sp+1]))
		case uint16(wasm.OpI32Store16), uint16(wasm.OpI64Store16):
			sp -= 2
			rt.StU16(pages, mem, rt.CheckAddr(stack[sp], in.a, 2), uint16(stack[sp+1]))
		case uint16(wasm.OpI64Store32):
			sp -= 2
			rt.StU32(pages, mem, rt.CheckAddr(stack[sp], in.a, 4), uint32(stack[sp+1]))
		case uint16(wasm.OpMemorySize):
			stack[sp] = uint64(mem.Pages())
			sp++
		case uint16(wasm.OpMemoryGrow):
			stack[sp-1] = uint64(uint32(mem.Grow(uint32(stack[sp-1]))))
			pages = mem.PageSlice()

		// Constants.
		case uint16(wasm.OpI32Const), uint16(wasm.OpI64Const),
			uint16(wasm.OpF32Const), uint16(wasm.OpF64Const):
			stack[sp] = in.a
			sp++

		// i32 comparisons.
		case uint16(wasm.OpI32Eqz):
			stack[sp-1] = rt.B2i(uint32(stack[sp-1]) == 0)
		case uint16(wasm.OpI32Eq):
			sp--
			stack[sp-1] = rt.B2i(uint32(stack[sp-1]) == uint32(stack[sp]))
		case uint16(wasm.OpI32Ne):
			sp--
			stack[sp-1] = rt.B2i(uint32(stack[sp-1]) != uint32(stack[sp]))
		case uint16(wasm.OpI32LtS):
			sp--
			stack[sp-1] = rt.B2i(int32(uint32(stack[sp-1])) < int32(uint32(stack[sp])))
		case uint16(wasm.OpI32LtU):
			sp--
			stack[sp-1] = rt.B2i(uint32(stack[sp-1]) < uint32(stack[sp]))
		case uint16(wasm.OpI32GtS):
			sp--
			stack[sp-1] = rt.B2i(int32(uint32(stack[sp-1])) > int32(uint32(stack[sp])))
		case uint16(wasm.OpI32GtU):
			sp--
			stack[sp-1] = rt.B2i(uint32(stack[sp-1]) > uint32(stack[sp]))
		case uint16(wasm.OpI32LeS):
			sp--
			stack[sp-1] = rt.B2i(int32(uint32(stack[sp-1])) <= int32(uint32(stack[sp])))
		case uint16(wasm.OpI32LeU):
			sp--
			stack[sp-1] = rt.B2i(uint32(stack[sp-1]) <= uint32(stack[sp]))
		case uint16(wasm.OpI32GeS):
			sp--
			stack[sp-1] = rt.B2i(int32(uint32(stack[sp-1])) >= int32(uint32(stack[sp])))
		case uint16(wasm.OpI32GeU):
			sp--
			stack[sp-1] = rt.B2i(uint32(stack[sp-1]) >= uint32(stack[sp]))

		// i64 comparisons.
		case uint16(wasm.OpI64Eqz):
			stack[sp-1] = rt.B2i(stack[sp-1] == 0)
		case uint16(wasm.OpI64Eq):
			sp--
			stack[sp-1] = rt.B2i(stack[sp-1] == stack[sp])
		case uint16(wasm.OpI64Ne):
			sp--
			stack[sp-1] = rt.B2i(stack[sp-1] != stack[sp])
		case uint16(wasm.OpI64LtS):
			sp--
			stack[sp-1] = rt.B2i(int64(stack[sp-1]) < int64(stack[sp]))
		case uint16(wasm.OpI64LtU):
			sp--
			stack[sp-1] = rt.B2i(stack[sp-1] < stack[sp])
		case uint16(wasm.OpI64GtS):
			sp--
			stack[sp-1] = rt.B2i(int64(stack[sp-1]) > int64(stack[sp]))
		case uint16(wasm.OpI64GtU):
			sp--
			stack[sp-1] = rt.B2i(stack[sp-1] > stack[sp])
		case uint16(wasm.OpI64LeS):
			sp--
			stack[sp-1] = rt.B2i(int64(stack[sp-1]) <= int64(stack[sp]))
		case uint16(wasm.OpI64LeU):
			sp--
			stack[sp-1] = rt.B2i(stack[sp-1] <= stack[sp])
		case uint16(wasm.OpI64GeS):
			sp--
			stack[sp-1] = rt.B2i(int64(stack[sp-1]) >= int64(stack[sp]))
		case uint16(wasm.OpI64GeU):
			sp--
			stack[sp-1] = rt.B2i(stack[sp-1] >= stack[sp])

		// f32 comparisons.
		case uint16(wasm.OpF32Eq):
			sp--
			stack[sp-1] = rt.B2i(rt.F32(stack[sp-1]) == rt.F32(stack[sp]))
		case uint16(wasm.OpF32Ne):
			sp--
			stack[sp-1] = rt.B2i(rt.F32(stack[sp-1]) != rt.F32(stack[sp]))
		case uint16(wasm.OpF32Lt):
			sp--
			stack[sp-1] = rt.B2i(rt.F32(stack[sp-1]) < rt.F32(stack[sp]))
		case uint16(wasm.OpF32Gt):
			sp--
			stack[sp-1] = rt.B2i(rt.F32(stack[sp-1]) > rt.F32(stack[sp]))
		case uint16(wasm.OpF32Le):
			sp--
			stack[sp-1] = rt.B2i(rt.F32(stack[sp-1]) <= rt.F32(stack[sp]))
		case uint16(wasm.OpF32Ge):
			sp--
			stack[sp-1] = rt.B2i(rt.F32(stack[sp-1]) >= rt.F32(stack[sp]))

		// f64 comparisons.
		case uint16(wasm.OpF64Eq):
			sp--
			stack[sp-1] = rt.B2i(rt.F64(stack[sp-1]) == rt.F64(stack[sp]))
		case uint16(wasm.OpF64Ne):
			sp--
			stack[sp-1] = rt.B2i(rt.F64(stack[sp-1]) != rt.F64(stack[sp]))
		case uint16(wasm.OpF64Lt):
			sp--
			stack[sp-1] = rt.B2i(rt.F64(stack[sp-1]) < rt.F64(stack[sp]))
		case uint16(wasm.OpF64Gt):
			sp--
			stack[sp-1] = rt.B2i(rt.F64(stack[sp-1]) > rt.F64(stack[sp]))
		case uint16(wasm.OpF64Le):
			sp--
			stack[sp-1] = rt.B2i(rt.F64(stack[sp-1]) <= rt.F64(stack[sp]))
		case uint16(wasm.OpF64Ge):
			sp--
			stack[sp-1] = rt.B2i(rt.F64(stack[sp-1]) >= rt.F64(stack[sp]))

		// i32 numerics.
		case uint16(wasm.OpI32Clz):
			stack[sp-1] = uint64(bits.LeadingZeros32(uint32(stack[sp-1])))
		case uint16(wasm.OpI32Ctz):
			stack[sp-1] = uint64(bits.TrailingZeros32(uint32(stack[sp-1])))
		case uint16(wasm.OpI32Popcnt):
			stack[sp-1] = uint64(bits.OnesCount32(uint32(stack[sp-1])))
		case uint16(wasm.OpI32Add):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) + uint32(stack[sp]))
		case uint16(wasm.OpI32Sub):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) - uint32(stack[sp]))
		case uint16(wasm.OpI32Mul):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) * uint32(stack[sp]))
		case uint16(wasm.OpI32DivS):
			sp--
			stack[sp-1] = rt.I32DivS(stack[sp-1], stack[sp])
		case uint16(wasm.OpI32DivU):
			sp--
			stack[sp-1] = rt.I32DivU(stack[sp-1], stack[sp])
		case uint16(wasm.OpI32RemS):
			sp--
			stack[sp-1] = rt.I32RemS(stack[sp-1], stack[sp])
		case uint16(wasm.OpI32RemU):
			sp--
			stack[sp-1] = rt.I32RemU(stack[sp-1], stack[sp])
		case uint16(wasm.OpI32And):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) & uint32(stack[sp]))
		case uint16(wasm.OpI32Or):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) | uint32(stack[sp]))
		case uint16(wasm.OpI32Xor):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) ^ uint32(stack[sp]))
		case uint16(wasm.OpI32Shl):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) << (stack[sp] & 31))
		case uint16(wasm.OpI32ShrS):
			sp--
			stack[sp-1] = uint64(uint32(int32(uint32(stack[sp-1])) >> (stack[sp] & 31)))
		case uint16(wasm.OpI32ShrU):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) >> (stack[sp] & 31))
		case uint16(wasm.OpI32Rotl):
			sp--
			stack[sp-1] = rt.Rotl32(stack[sp-1], stack[sp])
		case uint16(wasm.OpI32Rotr):
			sp--
			stack[sp-1] = rt.Rotr32(stack[sp-1], stack[sp])

		// i64 numerics.
		case uint16(wasm.OpI64Clz):
			stack[sp-1] = uint64(bits.LeadingZeros64(stack[sp-1]))
		case uint16(wasm.OpI64Ctz):
			stack[sp-1] = uint64(bits.TrailingZeros64(stack[sp-1]))
		case uint16(wasm.OpI64Popcnt):
			stack[sp-1] = uint64(bits.OnesCount64(stack[sp-1]))
		case uint16(wasm.OpI64Add):
			sp--
			stack[sp-1] += stack[sp]
		case uint16(wasm.OpI64Sub):
			sp--
			stack[sp-1] -= stack[sp]
		case uint16(wasm.OpI64Mul):
			sp--
			stack[sp-1] *= stack[sp]
		case uint16(wasm.OpI64DivS):
			sp--
			stack[sp-1] = rt.I64DivS(stack[sp-1], stack[sp])
		case uint16(wasm.OpI64DivU):
			sp--
			stack[sp-1] = rt.I64DivU(stack[sp-1], stack[sp])
		case uint16(wasm.OpI64RemS):
			sp--
			stack[sp-1] = rt.I64RemS(stack[sp-1], stack[sp])
		case uint16(wasm.OpI64RemU):
			sp--
			stack[sp-1] = rt.I64RemU(stack[sp-1], stack[sp])
		case uint16(wasm.OpI64And):
			sp--
			stack[sp-1] &= stack[sp]
		case uint16(wasm.OpI64Or):
			sp--
			stack[sp-1] |= stack[sp]
		case uint16(wasm.OpI64Xor):
			sp--
			stack[sp-1] ^= stack[sp]
		case uint16(wasm.OpI64Shl):
			sp--
			stack[sp-1] <<= stack[sp] & 63
		case uint16(wasm.OpI64ShrS):
			sp--
			stack[sp-1] = uint64(int64(stack[sp-1]) >> (stack[sp] & 63))
		case uint16(wasm.OpI64ShrU):
			sp--
			stack[sp-1] >>= stack[sp] & 63
		case uint16(wasm.OpI64Rotl):
			sp--
			stack[sp-1] = rt.Rotl64(stack[sp-1], stack[sp])
		case uint16(wasm.OpI64Rotr):
			sp--
			stack[sp-1] = rt.Rotr64(stack[sp-1], stack[sp])

		// f32 numerics.
		case uint16(wasm.OpF32Abs):
			stack[sp-1] = uint64(uint32(stack[sp-1]) &^ 0x80000000)
		case uint16(wasm.OpF32Neg):
			stack[sp-1] = uint64(uint32(stack[sp-1]) ^ 0x80000000)
		case uint16(wasm.OpF32Ceil):
			stack[sp-1] = rt.F32Bits(float32(math.Ceil(float64(rt.F32(stack[sp-1])))))
		case uint16(wasm.OpF32Floor):
			stack[sp-1] = rt.F32Bits(float32(math.Floor(float64(rt.F32(stack[sp-1])))))
		case uint16(wasm.OpF32Trunc):
			stack[sp-1] = rt.F32Bits(float32(math.Trunc(float64(rt.F32(stack[sp-1])))))
		case uint16(wasm.OpF32Nearest):
			stack[sp-1] = rt.F32Bits(float32(math.RoundToEven(float64(rt.F32(stack[sp-1])))))
		case uint16(wasm.OpF32Sqrt):
			stack[sp-1] = rt.F32Bits(float32(math.Sqrt(float64(rt.F32(stack[sp-1])))))
		case uint16(wasm.OpF32Add):
			sp--
			stack[sp-1] = rt.F32Bits(rt.F32(stack[sp-1]) + rt.F32(stack[sp]))
		case uint16(wasm.OpF32Sub):
			sp--
			stack[sp-1] = rt.F32Bits(rt.F32(stack[sp-1]) - rt.F32(stack[sp]))
		case uint16(wasm.OpF32Mul):
			sp--
			stack[sp-1] = rt.F32Bits(rt.F32(stack[sp-1]) * rt.F32(stack[sp]))
		case uint16(wasm.OpF32Div):
			sp--
			stack[sp-1] = rt.F32Bits(rt.F32(stack[sp-1]) / rt.F32(stack[sp]))
		case uint16(wasm.OpF32Min):
			sp--
			stack[sp-1] = rt.F32Bits(rt.FMin32(rt.F32(stack[sp-1]), rt.F32(stack[sp])))
		case uint16(wasm.OpF32Max):
			sp--
			stack[sp-1] = rt.F32Bits(rt.FMax32(rt.F32(stack[sp-1]), rt.F32(stack[sp])))
		case uint16(wasm.OpF32Copysign):
			sp--
			stack[sp-1] = rt.F32Bits(float32(math.Copysign(float64(rt.F32(stack[sp-1])), float64(rt.F32(stack[sp])))))

		// f64 numerics.
		case uint16(wasm.OpF64Abs):
			stack[sp-1] &= 0x7FFFFFFFFFFFFFFF
		case uint16(wasm.OpF64Neg):
			stack[sp-1] ^= 0x8000000000000000
		case uint16(wasm.OpF64Ceil):
			stack[sp-1] = rt.F64Bits(math.Ceil(rt.F64(stack[sp-1])))
		case uint16(wasm.OpF64Floor):
			stack[sp-1] = rt.F64Bits(math.Floor(rt.F64(stack[sp-1])))
		case uint16(wasm.OpF64Trunc):
			stack[sp-1] = rt.F64Bits(math.Trunc(rt.F64(stack[sp-1])))
		case uint16(wasm.OpF64Nearest):
			stack[sp-1] = rt.F64Bits(math.RoundToEven(rt.F64(stack[sp-1])))
		case uint16(wasm.OpF64Sqrt):
			stack[sp-1] = rt.F64Bits(math.Sqrt(rt.F64(stack[sp-1])))
		case uint16(wasm.OpF64Add):
			sp--
			stack[sp-1] = rt.F64Bits(rt.F64(stack[sp-1]) + rt.F64(stack[sp]))
		case uint16(wasm.OpF64Sub):
			sp--
			stack[sp-1] = rt.F64Bits(rt.F64(stack[sp-1]) - rt.F64(stack[sp]))
		case uint16(wasm.OpF64Mul):
			sp--
			stack[sp-1] = rt.F64Bits(rt.F64(stack[sp-1]) * rt.F64(stack[sp]))
		case uint16(wasm.OpF64Div):
			sp--
			stack[sp-1] = rt.F64Bits(rt.F64(stack[sp-1]) / rt.F64(stack[sp]))
		case uint16(wasm.OpF64Min):
			sp--
			stack[sp-1] = rt.F64Bits(rt.FMin64(rt.F64(stack[sp-1]), rt.F64(stack[sp])))
		case uint16(wasm.OpF64Max):
			sp--
			stack[sp-1] = rt.F64Bits(rt.FMax64(rt.F64(stack[sp-1]), rt.F64(stack[sp])))
		case uint16(wasm.OpF64Copysign):
			sp--
			stack[sp-1] = rt.F64Bits(math.Copysign(rt.F64(stack[sp-1]), rt.F64(stack[sp])))

		// Conversions.
		case uint16(wasm.OpI32WrapI64):
			stack[sp-1] = uint64(uint32(stack[sp-1]))
		case uint16(wasm.OpI32TruncF32S):
			stack[sp-1] = rt.TruncF32ToI32S(stack[sp-1])
		case uint16(wasm.OpI32TruncF32U):
			stack[sp-1] = rt.TruncF32ToI32U(stack[sp-1])
		case uint16(wasm.OpI32TruncF64S):
			stack[sp-1] = rt.TruncF64ToI32S(stack[sp-1])
		case uint16(wasm.OpI32TruncF64U):
			stack[sp-1] = rt.TruncF64ToI32U(stack[sp-1])
		case uint16(wasm.OpI64ExtendI32S):
			stack[sp-1] = uint64(int64(int32(uint32(stack[sp-1]))))
		case uint16(wasm.OpI64ExtendI32U):
			stack[sp-1] = uint64(uint32(stack[sp-1]))
		case uint16(wasm.OpI64TruncF32S):
			stack[sp-1] = rt.TruncF32ToI64S(stack[sp-1])
		case uint16(wasm.OpI64TruncF32U):
			stack[sp-1] = rt.TruncF32ToI64U(stack[sp-1])
		case uint16(wasm.OpI64TruncF64S):
			stack[sp-1] = rt.TruncF64ToI64S(stack[sp-1])
		case uint16(wasm.OpI64TruncF64U):
			stack[sp-1] = rt.TruncF64ToI64U(stack[sp-1])
		case uint16(wasm.OpF32ConvertI32S):
			stack[sp-1] = rt.F32Bits(float32(int32(uint32(stack[sp-1]))))
		case uint16(wasm.OpF32ConvertI32U):
			stack[sp-1] = rt.F32Bits(float32(uint32(stack[sp-1])))
		case uint16(wasm.OpF32ConvertI64S):
			stack[sp-1] = rt.F32Bits(float32(int64(stack[sp-1])))
		case uint16(wasm.OpF32ConvertI64U):
			stack[sp-1] = rt.F32Bits(float32(stack[sp-1]))
		case uint16(wasm.OpF32DemoteF64):
			stack[sp-1] = rt.F32Bits(float32(rt.F64(stack[sp-1])))
		case uint16(wasm.OpF64ConvertI32S):
			stack[sp-1] = rt.F64Bits(float64(int32(uint32(stack[sp-1]))))
		case uint16(wasm.OpF64ConvertI32U):
			stack[sp-1] = rt.F64Bits(float64(uint32(stack[sp-1])))
		case uint16(wasm.OpF64ConvertI64S):
			stack[sp-1] = rt.F64Bits(float64(int64(stack[sp-1])))
		case uint16(wasm.OpF64ConvertI64U):
			stack[sp-1] = rt.F64Bits(float64(stack[sp-1]))
		case uint16(wasm.OpF64PromoteF32):
			stack[sp-1] = rt.F64Bits(float64(rt.F32(stack[sp-1])))
		case uint16(wasm.OpI32ReinterpretF32), uint16(wasm.OpI64ReinterpretF64),
			uint16(wasm.OpF32ReinterpretI32), uint16(wasm.OpF64ReinterpretI64):
			// Bit patterns are already raw.
		case uint16(wasm.OpI32Extend8S):
			stack[sp-1] = uint64(uint32(int32(int8(uint8(stack[sp-1])))))
		case uint16(wasm.OpI32Extend16S):
			stack[sp-1] = uint64(uint32(int32(int16(uint16(stack[sp-1])))))
		case uint16(wasm.OpI64Extend8S):
			stack[sp-1] = uint64(int64(int8(uint8(stack[sp-1]))))
		case uint16(wasm.OpI64Extend16S):
			stack[sp-1] = uint64(int64(int16(uint16(stack[sp-1]))))
		case uint16(wasm.OpI64Extend32S):
			stack[sp-1] = uint64(int64(int32(uint32(stack[sp-1]))))

		default:
			rt.Trap("liftoff: unknown opcode %#x", in.op)
		}
		pc++
	}
}
