// Package liftoff is the fast baseline tier of the execution engine, named
// after V8's baseline compiler. It translates validated WebAssembly function
// bodies in a single pass into a flat instruction stream with resolved branch
// targets and executes it on a stack machine. Translation is deliberately
// cheap — one pass, no IR, no optimization — trading execution speed for
// minimal compile latency, exactly the role Liftoff plays in the paper's
// architecture (§2.2).
package liftoff

import (
	"fmt"

	"wasmdb/internal/wasm"
)

// Extended opcodes used by the flat instruction stream. Values below 0x100
// reuse the wasm.Opcode encoding unchanged.
const (
	opJump       = 0x100 + iota // a = target pc
	opJumpIfZero                // a = target pc; pops condition
	opJumpIfNot                 // a = target pc; pops condition, jumps if non-zero
	opBrUnwind                  // a = target pc, b = height<<8 | arity
	opBrIfUnwind                // like opBrUnwind but pops condition first
	opBrTable                   // a = table index into Code.tables; pops index
	opRet                       // return from function
)

type instr struct {
	op   uint16
	a, b uint64
}

type tableTarget struct {
	pc     uint32
	height uint32
	arity  uint32
}

// Code is a liftoff-compiled function body.
type Code struct {
	Name     string
	NParams  int
	NResults int
	NLocals  int // params + declared locals
	MaxStack int
	ins      []instr
	tables   [][]tableTarget
}

// Compile translates one validated function body. The module supplies type
// information for calls.
func Compile(m *wasm.Module, fn *wasm.Func) (*Code, error) {
	ft := m.Types[fn.Type]
	c := &compiler{
		m: m,
		code: &Code{
			Name:     fn.Name,
			NParams:  len(ft.Params),
			NResults: len(ft.Results),
			NLocals:  len(ft.Params) + len(fn.Locals),
		},
	}
	if err := c.translate(fn.Body, len(ft.Results)); err != nil {
		return nil, fmt.Errorf("liftoff: %s: %w", fn.Name, err)
	}
	return c.code, nil
}

type ctrl struct {
	isLoop  bool
	isIf    bool
	height  int // operand height at entry
	arity   int // number of results
	startPC int // for loops: branch target
	// patches lists indices of emitted jumps waiting for this label's end pc.
	patches []int
	// elsePatch is the pending jumpIfZero of an if, patched at else/end.
	elsePatch int
	// endLive records whether the end of this construct is reachable.
	endLive bool
	liveIn  bool
}

type compiler struct {
	m      *wasm.Module
	code   *Code
	height int
	live   bool
	ctrls  []ctrl
}

func (c *compiler) emit(op uint16, a, b uint64) int {
	c.code.ins = append(c.code.ins, instr{op: op, a: a, b: b})
	return len(c.code.ins) - 1
}

func (c *compiler) adjust(pop, push int) {
	c.height += push - pop
	if c.height > c.code.MaxStack {
		c.code.MaxStack = c.height
	}
}

func (c *compiler) pc() int { return len(c.code.ins) }

func (c *compiler) translate(body []wasm.Instr, funcArity int) error {
	c.live = true
	c.ctrls = []ctrl{{arity: funcArity, liveIn: true, elsePatch: -1}}
	for _, in := range body {
		if err := c.instr(in); err != nil {
			return err
		}
		if len(c.ctrls) == 0 {
			return nil
		}
	}
	return fmt.Errorf("missing end")
}

// branchTarget emits the branch plumbing for a br/br_if to relative depth.
// For conditional branches the condition has already been popped from the
// compile-time height.
func (c *compiler) branch(depth uint64, conditional bool) error {
	if depth >= uint64(len(c.ctrls)) {
		return fmt.Errorf("branch depth out of range")
	}
	t := &c.ctrls[len(c.ctrls)-1-int(depth)]
	if t.isLoop {
		// Backward branch to loop header; loops have no label results.
		if c.height == t.height {
			if conditional {
				c.emit(opJumpIfNot, uint64(t.startPC), 0)
			} else {
				c.emit(opJump, uint64(t.startPC), 0)
			}
		} else {
			op := uint16(opBrUnwind)
			if conditional {
				op = opBrIfUnwind
			}
			c.emit(op, uint64(t.startPC), uint64(t.height)<<8)
		}
		return nil
	}
	t.endLive = true
	var idx int
	if c.height == t.height+t.arity {
		// No unwinding needed: stack already at target shape.
		if conditional {
			idx = c.emit(opJumpIfNot, 0, 0)
		} else {
			idx = c.emit(opJump, 0, 0)
		}
	} else {
		op := uint16(opBrUnwind)
		if conditional {
			op = opBrIfUnwind
		}
		idx = c.emit(op, 0, uint64(t.height)<<8|uint64(t.arity))
	}
	t.patches = append(t.patches, idx)
	return nil
}

func (c *compiler) instr(in wasm.Instr) error {
	if !c.live {
		// Dead code: track nesting only.
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			c.ctrls = append(c.ctrls, ctrl{liveIn: false, elsePatch: -1, isIf: in.Op == wasm.OpIf, isLoop: in.Op == wasm.OpLoop})
		case wasm.OpElse:
			t := &c.ctrls[len(c.ctrls)-1]
			if t.liveIn {
				// The if was reachable; the else arm is reachable again.
				if t.elsePatch >= 0 {
					c.code.ins[t.elsePatch].a = uint64(c.pc())
					t.elsePatch = -1
				}
				c.live = true
				c.height = t.height
			}
		case wasm.OpEnd:
			t := c.ctrls[len(c.ctrls)-1]
			c.ctrls = c.ctrls[:len(c.ctrls)-1]
			if len(c.ctrls) == 0 {
				return nil
			}
			endPC := c.pc()
			for _, p := range t.patches {
				c.resolvePatch(p, endPC)
			}
			if t.elsePatch >= 0 {
				// if without else whose then-arm ended dead: false path
				// falls through to end.
				c.code.ins[t.elsePatch].a = uint64(endPC)
				t.endLive = t.endLive || t.liveIn
			}
			if t.endLive {
				c.live = true
				c.height = t.height + t.arity
				if c.height > c.code.MaxStack {
					c.code.MaxStack = c.height
				}
			}
		}
		return nil
	}

	if pop, push, ok := in.Op.InOut(); ok {
		c.adjust(pop, 0)
		c.emit(uint16(in.Op), in.A, in.B)
		c.adjust(0, push)
		return nil
	}

	switch in.Op {
	case wasm.OpNop:
	case wasm.OpUnreachable:
		c.emit(uint16(wasm.OpUnreachable), 0, 0)
		c.live = false
	case wasm.OpBlock:
		c.ctrls = append(c.ctrls, ctrl{
			height: c.height, arity: len(wasm.BlockType(in.A).Results()),
			liveIn: true, elsePatch: -1,
		})
	case wasm.OpLoop:
		c.ctrls = append(c.ctrls, ctrl{
			isLoop: true, height: c.height, arity: len(wasm.BlockType(in.A).Results()),
			startPC: c.pc(), liveIn: true, elsePatch: -1,
		})
	case wasm.OpIf:
		c.adjust(1, 0)
		idx := c.emit(opJumpIfZero, 0, 0)
		c.ctrls = append(c.ctrls, ctrl{
			isIf: true, height: c.height, arity: len(wasm.BlockType(in.A).Results()),
			liveIn: true, elsePatch: idx,
		})
	case wasm.OpElse:
		t := &c.ctrls[len(c.ctrls)-1]
		// Jump over the else arm from the end of the then arm.
		idx := c.emit(opJump, 0, 0)
		t.patches = append(t.patches, idx)
		t.endLive = true
		if t.elsePatch >= 0 {
			c.code.ins[t.elsePatch].a = uint64(c.pc())
			t.elsePatch = -1
		}
		c.height = t.height
	case wasm.OpEnd:
		t := c.ctrls[len(c.ctrls)-1]
		c.ctrls = c.ctrls[:len(c.ctrls)-1]
		if len(c.ctrls) == 0 {
			c.emit(opRet, 0, 0)
			return nil
		}
		endPC := c.pc()
		if t.elsePatch >= 0 {
			// if without else: the false path jumps to end.
			c.code.ins[t.elsePatch].a = uint64(endPC)
		}
		for _, p := range t.patches {
			c.resolvePatch(p, endPC)
		}
		c.height = t.height + t.arity
		if c.height > c.code.MaxStack {
			c.code.MaxStack = c.height
		}
	case wasm.OpBr:
		if err := c.branch(in.A, false); err != nil {
			return err
		}
		c.live = false
	case wasm.OpBrIf:
		c.adjust(1, 0)
		if err := c.branch(in.A, true); err != nil {
			return err
		}
	case wasm.OpBrTable:
		c.adjust(1, 0)
		tbl := make([]tableTarget, 0, len(in.Table)+1)
		addTarget := func(depth uint64) error {
			if depth >= uint64(len(c.ctrls)) {
				return fmt.Errorf("br_table depth out of range")
			}
			t := &c.ctrls[len(c.ctrls)-1-int(depth)]
			tt := tableTarget{height: uint32(t.height)}
			if t.isLoop {
				tt.pc = uint32(t.startPC)
			} else {
				t.endLive = true
				tt.arity = uint32(t.arity)
				// Patched below via tablePatches.
				tt.pc = ^uint32(0)
				t.patches = append(t.patches, -(len(c.code.tables)<<16|len(tbl))-1)
			}
			tbl = append(tbl, tt)
			return nil
		}
		for _, d := range in.Table {
			if err := addTarget(uint64(d)); err != nil {
				return err
			}
		}
		if err := addTarget(in.A); err != nil {
			return err
		}
		c.code.tables = append(c.code.tables, tbl)
		c.emit(opBrTable, uint64(len(c.code.tables)-1), 0)
		c.live = false
	case wasm.OpReturn:
		c.emit(opRet, 0, 0)
		c.live = false
	case wasm.OpCall:
		ft, err := c.m.FuncTypeAt(uint32(in.A))
		if err != nil {
			return err
		}
		c.adjust(len(ft.Params), 0)
		c.emit(uint16(wasm.OpCall), in.A, uint64(len(ft.Params))<<8|uint64(len(ft.Results)))
		c.adjust(0, len(ft.Results))
	case wasm.OpCallIndirect:
		ft := c.m.Types[in.A]
		c.adjust(1+len(ft.Params), 0)
		c.emit(uint16(wasm.OpCallIndirect), in.A, uint64(len(ft.Params))<<8|uint64(len(ft.Results)))
		c.adjust(0, len(ft.Results))
	case wasm.OpDrop:
		c.adjust(1, 0)
		c.emit(uint16(wasm.OpDrop), 0, 0)
	case wasm.OpSelect:
		c.adjust(3, 1)
		c.emit(uint16(wasm.OpSelect), 0, 0)
	case wasm.OpLocalGet:
		c.emit(uint16(wasm.OpLocalGet), in.A, 0)
		c.adjust(0, 1)
	case wasm.OpLocalSet:
		c.adjust(1, 0)
		c.emit(uint16(wasm.OpLocalSet), in.A, 0)
	case wasm.OpLocalTee:
		c.emit(uint16(wasm.OpLocalTee), in.A, 0)
	case wasm.OpGlobalGet:
		c.emit(uint16(wasm.OpGlobalGet), in.A, 0)
		c.adjust(0, 1)
	case wasm.OpGlobalSet:
		c.adjust(1, 0)
		c.emit(uint16(wasm.OpGlobalSet), in.A, 0)
	default:
		return fmt.Errorf("unhandled opcode %s", in.Op)
	}
	return nil
}

// resolveTablePatches fixes up br_table targets encoded as negative patch
// entries in ctrl.patches. It is called from the End handling above through
// the shared patch list: negative entries encode (table index, slot).
func (c *compiler) resolvePatch(p, endPC int) {
	if p >= 0 {
		c.code.ins[p].a = uint64(endPC)
		return
	}
	key := -(p + 1)
	ti, slot := key>>16, key&0xFFFF
	c.code.tables[ti][slot].pc = uint32(endPC)
}
