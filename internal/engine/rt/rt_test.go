package rt

import (
	"math"
	"testing"
	"testing/quick"
)

func expectTrap(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r == nil {
			t.Errorf("%s: expected trap", name)
		} else if _, ok := r.(*TrapError); !ok {
			t.Errorf("%s: wrong panic type %T", name, r)
		}
	}()
	fn()
}

func TestDivisionTraps(t *testing.T) {
	expectTrap(t, "i32 div by zero", func() { I32DivS(1, 0) })
	expectTrap(t, "i32 div overflow", func() { I32DivS(uint64(0x80000000), uint64(uint32(0xFFFFFFFF))) })
	expectTrap(t, "i32 divu by zero", func() { I32DivU(1, 0) })
	expectTrap(t, "i64 div by zero", func() { I64DivS(1, 0) })
	expectTrap(t, "i64 div overflow", func() { I64DivS(1<<63, ^uint64(0)) })
	expectTrap(t, "i64 rem by zero", func() { I64RemS(1, 0) })

	if I32RemS(uint64(0x80000000), uint64(uint32(0xFFFFFFFF))) != 0 {
		t.Error("INT32_MIN % -1 must be 0")
	}
	if I64RemS(1<<63, ^uint64(0)) != 0 {
		t.Error("INT64_MIN % -1 must be 0")
	}
	if I32DivS(uint64(uint32(4294967289)), uint64(uint32(2))) != uint64(uint32(4294967293)) {
		t.Error("-7/2 should be -3")
	}
}

func TestTruncTraps(t *testing.T) {
	expectTrap(t, "trunc NaN", func() { TruncF64ToI32S(F64Bits(math.NaN())) })
	expectTrap(t, "trunc +inf", func() { TruncF64ToI64S(F64Bits(math.Inf(1))) })
	expectTrap(t, "trunc overflow i32", func() { TruncF64ToI32S(F64Bits(3e9)) })
	expectTrap(t, "trunc negative u32", func() { TruncF64ToI32U(F64Bits(-1.5)) })
	expectTrap(t, "trunc 2^63 i64", func() { TruncF64ToI64S(F64Bits(9.3e18)) })
	if TruncF64ToI32S(F64Bits(-2147483648.0)) != uint64(0x80000000) {
		t.Error("INT32_MIN must be exactly convertible")
	}
	if TruncF64ToI64S(F64Bits(-9223372036854775808.0)) != 1<<63 {
		t.Error("INT64_MIN must be exactly convertible")
	}
	if TruncF64ToI32S(F64Bits(-3.99)) != uint64(uint32(0xFFFFFFFD)) {
		t.Error("trunc(-3.99) != -3")
	}
}

func TestFloatMinMaxSemantics(t *testing.T) {
	nan := math.NaN()
	if !math.IsNaN(FMin64(nan, 1)) || !math.IsNaN(FMax64(1, nan)) {
		t.Error("NaN must propagate")
	}
	if !math.Signbit(FMin64(0, math.Copysign(0, -1))) {
		t.Error("min(+0,-0) must be -0")
	}
	if math.Signbit(FMax64(0, math.Copysign(0, -1))) {
		t.Error("max(+0,-0) must be +0")
	}
	if FMin64(1, 2) != 1 || FMax64(1, 2) != 2 {
		t.Error("plain min/max")
	}
}

func TestRotations(t *testing.T) {
	if Rotl32(0x80000000, 1) != 1 {
		t.Error("rotl32")
	}
	if Rotr32(1, 1) != 0x80000000 {
		t.Error("rotr32")
	}
	f := func(v uint64, k uint8) bool {
		return Rotr64(Rotl64(v, uint64(k)), uint64(k)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameArena(t *testing.T) {
	env := &Env{}
	a := env.Frame(16)
	a[0] = 7
	b := env.Frame(1 << 16) // forces growth
	b[0] = 9
	if a2 := env.arena[:16]; a2[0] != 7 {
		t.Error("growth lost existing frame data")
	}
	env.PopFrame(1 << 16)
	env.PopFrame(16)
	c := env.Frame(4)
	for _, v := range c {
		if v != 0 {
			t.Error("frame not zeroed")
		}
	}
	env.Reset()
	if env.top != 0 || env.Depth != 0 {
		t.Error("reset")
	}
}

func TestCallDepthTrap(t *testing.T) {
	env := &Env{Depth: MaxCallDepth}
	expectTrap(t, "depth", env.Enter)
}

func TestCheckAddr(t *testing.T) {
	if got := CheckAddr(100, 28, 4); got != 128 {
		t.Errorf("CheckAddr = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("wraparound access not trapped")
		}
	}()
	CheckAddr(0xFFFFFFFF, 16, 8)
}
