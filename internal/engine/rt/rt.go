// Package rt holds the shared runtime types used by both execution tiers.
// It defines the call convention between compiled functions, the execution
// environment (memory, globals, function table), and trap handling.
package rt

import (
	"fmt"

	"wasmdb/internal/engine/wmem"
	"wasmdb/internal/wasm"
)

// MaxCallDepth bounds guest recursion; exceeding it traps.
const MaxCallDepth = 20000

// Callee is anything invocable by guest code: a tiered guest function or a
// host function. Args and res may alias the caller's operand stack; a callee
// must consume args before producing res.
type Callee interface {
	Call(env *Env, args, res []uint64)
}

// HostFunc adapts a Go function to the guest call convention.
type HostFunc struct {
	Type wasm.FuncType
	Fn   func(env *Env, args, res []uint64)
}

// Call implements Callee.
func (h *HostFunc) Call(env *Env, args, res []uint64) { h.Fn(env, args, res) }

// Env is the per-instance execution environment shared by all frames.
type Env struct {
	Mem     *wmem.Memory
	Globals []uint64
	// Funcs maps function index (imports first) to callable code.
	Funcs []Callee
	// FuncTypes maps function index to its type index; Types is the module
	// type section. Both serve call_indirect signature checks.
	FuncTypes []uint32
	Types     []wasm.FuncType
	// Table is the funcref table; entries are function indices, ^0 if null.
	Table []uint32
	Depth int

	// arena is the shared value-stack arena for interpreter frames.
	arena []uint64
	top   int
}

// TrapError is a non-memory trap (unreachable, division by zero, bad
// conversion, indirect call failure, stack exhaustion).
type TrapError struct{ Msg string }

func (t *TrapError) Error() string { return "wasm trap: " + t.Msg }

// Trap panics with a TrapError; the engine recovers it at the call boundary.
func Trap(format string, args ...any) {
	panic(&TrapError{Msg: fmt.Sprintf(format, args...)})
}

// Frame carves n value slots from the shared arena. Release with PopFrame in
// LIFO order.
func (e *Env) Frame(n int) []uint64 {
	if e.top+n > len(e.arena) {
		grow := len(e.arena)*2 + n + 4096
		na := make([]uint64, grow)
		copy(na, e.arena[:e.top])
		e.arena = na
	}
	f := e.arena[e.top : e.top+n : e.top+n]
	for i := range f {
		f[i] = 0
	}
	e.top += n
	return f
}

// PopFrame releases the most recent n slots.
func (e *Env) PopFrame(n int) { e.top -= n }

// Reset discards all frames and resets the call depth. The engine calls it
// after recovering from a trap, when unwinding skipped the usual PopFrame
// bookkeeping.
func (e *Env) Reset() {
	e.top = 0
	e.Depth = 0
}

// Enter increments the call depth, trapping on exhaustion.
func (e *Env) Enter() {
	e.Depth++
	if e.Depth > MaxCallDepth {
		Trap("call stack exhausted")
	}
}

// Exit decrements the call depth.
func (e *Env) Exit() { e.Depth-- }

// CheckAddr validates that an access of size bytes at base+offset stays
// within the 32-bit address space and returns the effective address.
func CheckAddr(base uint64, offset uint64, size uint32) uint32 {
	ea := uint64(uint32(base)) + offset
	if ea+uint64(size) > 1<<32 {
		panic(&wmem.Trap{Addr: uint32(ea), Size: size, Msg: "out-of-bounds memory access"})
	}
	return uint32(ea)
}
