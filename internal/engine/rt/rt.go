// Package rt holds the shared runtime types used by both execution tiers.
// It defines the call convention between compiled functions, the execution
// environment (memory, globals, function table), and trap handling.
package rt

import (
	"errors"
	"fmt"
	"sync/atomic"

	"wasmdb/internal/engine/wmem"
	"wasmdb/internal/wasm"
)

// MaxCallDepth bounds guest recursion; exceeding it traps.
const MaxCallDepth = 20000

// ErrFuelExhausted reports that a fuel-metered instance ran out of its
// execution budget. Both tiers consume fuel at loop back-edges and function
// entries, so even generated code the host cannot otherwise interrupt
// mid-morsel is bounded.
var ErrFuelExhausted = errors.New("wasm trap: fuel exhausted")

// ErrInterrupted reports that a fuel-metered instance was stopped by
// Env.Interrupt — the mechanism behind context cancellation taking effect
// inside a running morsel.
var ErrInterrupted = errors.New("wasm trap: execution interrupted")

// Callee is anything invocable by guest code: a tiered guest function or a
// host function. Args and res may alias the caller's operand stack; a callee
// must consume args before producing res.
type Callee interface {
	Call(env *Env, args, res []uint64)
}

// HostFunc adapts a Go function to the guest call convention.
type HostFunc struct {
	Type wasm.FuncType
	Fn   func(env *Env, args, res []uint64)
}

// Call implements Callee.
func (h *HostFunc) Call(env *Env, args, res []uint64) { h.Fn(env, args, res) }

// Env is the per-instance execution environment shared by all frames.
type Env struct {
	Mem     *wmem.Memory
	Globals []uint64
	// Funcs maps function index (imports first) to callable code.
	Funcs []Callee
	// FuncTypes maps function index to its type index; Types is the module
	// type section. Both serve call_indirect signature checks.
	FuncTypes []uint32
	Types     []wasm.FuncType
	// Table is the funcref table; entries are function indices, ^0 if null.
	Table []uint32
	Depth int

	// Metered enables fuel accounting (set via SetFuel). The interpreters
	// check it before touching the atomic counters so unmetered execution
	// pays a single predictable branch per back-edge.
	Metered bool

	// arena is the shared value-stack arena for interpreter frames.
	arena []uint64
	top   int

	// fuel is the remaining execution budget; interrupted is set by
	// Interrupt from another goroutine (the executor's cancellation
	// watchdog), hence both are atomics.
	fuel        atomic.Int64
	interrupted atomic.Bool
}

// TrapError is a non-memory trap (unreachable, division by zero, bad
// conversion, indirect call failure, stack or fuel exhaustion).
type TrapError struct {
	Msg string
	// Cause, when non-nil, is the typed sentinel behind the trap
	// (ErrFuelExhausted, ErrInterrupted) reachable via errors.Is.
	Cause error
}

func (t *TrapError) Error() string { return "wasm trap: " + t.Msg }

// Unwrap exposes the typed cause to errors.Is/errors.As.
func (t *TrapError) Unwrap() error { return t.Cause }

// Trap panics with a TrapError; the engine recovers it at the call boundary.
func Trap(format string, args ...any) {
	panic(&TrapError{Msg: fmt.Sprintf(format, args...)})
}

// Frame carves n value slots from the shared arena. Release with PopFrame in
// LIFO order.
func (e *Env) Frame(n int) []uint64 {
	if e.top+n > len(e.arena) {
		grow := len(e.arena)*2 + n + 4096
		na := make([]uint64, grow)
		copy(na, e.arena[:e.top])
		e.arena = na
	}
	f := e.arena[e.top : e.top+n : e.top+n]
	for i := range f {
		f[i] = 0
	}
	e.top += n
	return f
}

// PopFrame releases the most recent n slots.
func (e *Env) PopFrame(n int) { e.top -= n }

// Reset discards all frames and resets the call depth. The engine calls it
// after recovering from a trap, when unwinding skipped the usual PopFrame
// bookkeeping.
func (e *Env) Reset() {
	e.top = 0
	e.Depth = 0
}

// SetFuel arms fuel metering with a budget of n units (n <= 0 disables
// metering) and clears any pending interrupt. One unit is charged per
// function entry and per taken loop back-edge.
func (e *Env) SetFuel(n int64) {
	e.Metered = n > 0
	e.fuel.Store(n)
	e.interrupted.Store(false)
}

// FuelLeft returns the remaining budget (0 when exhausted, -1 when
// unmetered).
func (e *Env) FuelLeft() int64 {
	if !e.Metered {
		return -1
	}
	if f := e.fuel.Load(); f > 0 {
		return f
	}
	return 0
}

// Interrupt stops a metered instance at its next fuel check. It is safe to
// call from another goroutine while guest code runs; the victim traps with
// ErrInterrupted. Unmetered instances ignore it.
func (e *Env) Interrupt() { e.interrupted.Store(true) }

// UseFuel consumes n units when metering is enabled, trapping with
// ErrInterrupted or ErrFuelExhausted. Callers on hot paths should gate on
// e.Metered before calling.
func (e *Env) UseFuel(n int64) {
	if !e.Metered {
		return
	}
	if e.interrupted.Load() {
		panic(&TrapError{Msg: "execution interrupted", Cause: ErrInterrupted})
	}
	if e.fuel.Add(-n) < 0 {
		panic(&TrapError{Msg: "fuel exhausted", Cause: ErrFuelExhausted})
	}
}

// Enter increments the call depth, trapping on exhaustion, and charges one
// unit of fuel when metered.
func (e *Env) Enter() {
	e.Depth++
	if e.Depth > MaxCallDepth {
		Trap("call stack exhausted")
	}
	if e.Metered {
		e.UseFuel(1)
	}
}

// Exit decrements the call depth.
func (e *Env) Exit() { e.Depth-- }

// CheckAddr validates that an access of size bytes at base+offset stays
// within the 32-bit address space and returns the effective address.
func CheckAddr(base uint64, offset uint64, size uint32) uint32 {
	ea := uint64(uint32(base)) + offset
	if ea+uint64(size) > 1<<32 {
		panic(&wmem.Trap{Addr: uint32(ea), Size: size, Msg: "out-of-bounds memory access"})
	}
	return uint32(ea)
}
