package rt

import (
	"encoding/binary"

	"wasmdb/internal/engine/wmem"
)

// Inline fast paths for linear-memory access. The interpreters cache the
// memory's page table ([][]byte) in a local and go through these helpers,
// which fall back to the wmem slow path for page-straddling or out-of-bounds
// accesses (where the trap is raised). The cached page slice MUST be
// refreshed after any instruction that can grow memory — calls (a callee or
// host function may allocate) and memory.grow.

const pageSz = 64 * 1024

// LdU8 loads a byte.
func LdU8(pages [][]byte, m *wmem.Memory, ea uint32) byte {
	if p := ea >> 16; p < uint32(len(pages)) {
		return pages[p][ea&0xFFFF]
	}
	return m.U8(ea)
}

// LdU16 loads a 16-bit value.
func LdU16(pages [][]byte, m *wmem.Memory, ea uint32) uint16 {
	p := ea >> 16
	if off := ea & 0xFFFF; p < uint32(len(pages)) && off <= pageSz-2 {
		return binary.LittleEndian.Uint16(pages[p][off:])
	}
	return m.U16(ea)
}

// LdU32 loads a 32-bit value.
func LdU32(pages [][]byte, m *wmem.Memory, ea uint32) uint32 {
	p := ea >> 16
	if off := ea & 0xFFFF; p < uint32(len(pages)) && off <= pageSz-4 {
		return binary.LittleEndian.Uint32(pages[p][off:])
	}
	return m.U32(ea)
}

// LdU64 loads a 64-bit value.
func LdU64(pages [][]byte, m *wmem.Memory, ea uint32) uint64 {
	p := ea >> 16
	if off := ea & 0xFFFF; p < uint32(len(pages)) && off <= pageSz-8 {
		return binary.LittleEndian.Uint64(pages[p][off:])
	}
	return m.U64(ea)
}

// StU8 stores a byte.
func StU8(pages [][]byte, m *wmem.Memory, ea uint32, v byte) {
	if p := ea >> 16; p < uint32(len(pages)) {
		pages[p][ea&0xFFFF] = v
		return
	}
	m.PutU8(ea, v)
}

// StU16 stores a 16-bit value.
func StU16(pages [][]byte, m *wmem.Memory, ea uint32, v uint16) {
	p := ea >> 16
	if off := ea & 0xFFFF; p < uint32(len(pages)) && off <= pageSz-2 {
		binary.LittleEndian.PutUint16(pages[p][off:], v)
		return
	}
	m.PutU16(ea, v)
}

// StU32 stores a 32-bit value.
func StU32(pages [][]byte, m *wmem.Memory, ea uint32, v uint32) {
	p := ea >> 16
	if off := ea & 0xFFFF; p < uint32(len(pages)) && off <= pageSz-4 {
		binary.LittleEndian.PutUint32(pages[p][off:], v)
		return
	}
	m.PutU32(ea, v)
}

// StU64 stores a 64-bit value.
func StU64(pages [][]byte, m *wmem.Memory, ea uint32, v uint64) {
	p := ea >> 16
	if off := ea & 0xFFFF; p < uint32(len(pages)) && off <= pageSz-8 {
		binary.LittleEndian.PutUint64(pages[p][off:], v)
		return
	}
	m.PutU64(ea, v)
}
