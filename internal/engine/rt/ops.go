package rt

import (
	"math"
	"math/bits"
)

// Numeric helpers with exact WebAssembly semantics, shared by both tiers.
// Values are passed as raw 64-bit patterns; i32 values are zero-extended.

// I32DivS performs signed 32-bit division, trapping on division by zero and
// on overflow (INT32_MIN / -1).
func I32DivS(a, b uint64) uint64 {
	x, y := int32(uint32(a)), int32(uint32(b))
	if y == 0 {
		Trap("integer divide by zero")
	}
	if x == math.MinInt32 && y == -1 {
		Trap("integer overflow")
	}
	return uint64(uint32(x / y))
}

// I32DivU performs unsigned 32-bit division, trapping on division by zero.
func I32DivU(a, b uint64) uint64 {
	x, y := uint32(a), uint32(b)
	if y == 0 {
		Trap("integer divide by zero")
	}
	return uint64(x / y)
}

// I32RemS computes the signed 32-bit remainder, trapping on zero divisor.
func I32RemS(a, b uint64) uint64 {
	x, y := int32(uint32(a)), int32(uint32(b))
	if y == 0 {
		Trap("integer divide by zero")
	}
	if x == math.MinInt32 && y == -1 {
		return 0
	}
	return uint64(uint32(x % y))
}

// I32RemU computes the unsigned 32-bit remainder, trapping on zero divisor.
func I32RemU(a, b uint64) uint64 {
	x, y := uint32(a), uint32(b)
	if y == 0 {
		Trap("integer divide by zero")
	}
	return uint64(x % y)
}

// I64DivS performs signed 64-bit division with wasm trap semantics.
func I64DivS(a, b uint64) uint64 {
	x, y := int64(a), int64(b)
	if y == 0 {
		Trap("integer divide by zero")
	}
	if x == math.MinInt64 && y == -1 {
		Trap("integer overflow")
	}
	return uint64(x / y)
}

// I64DivU performs unsigned 64-bit division with wasm trap semantics.
func I64DivU(a, b uint64) uint64 {
	if b == 0 {
		Trap("integer divide by zero")
	}
	return a / b
}

// I64RemS computes the signed 64-bit remainder with wasm trap semantics.
func I64RemS(a, b uint64) uint64 {
	x, y := int64(a), int64(b)
	if y == 0 {
		Trap("integer divide by zero")
	}
	if x == math.MinInt64 && y == -1 {
		return 0
	}
	return uint64(x % y)
}

// I64RemU computes the unsigned 64-bit remainder with wasm trap semantics.
func I64RemU(a, b uint64) uint64 {
	if b == 0 {
		Trap("integer divide by zero")
	}
	return a % b
}

// Rotl32 rotates the low 32 bits left.
func Rotl32(a, b uint64) uint64 { return uint64(bits.RotateLeft32(uint32(a), int(b&31))) }

// Rotr32 rotates the low 32 bits right.
func Rotr32(a, b uint64) uint64 { return uint64(bits.RotateLeft32(uint32(a), -int(b&31))) }

// Rotl64 rotates 64 bits left.
func Rotl64(a, b uint64) uint64 { return bits.RotateLeft64(a, int(b&63)) }

// Rotr64 rotates 64 bits right.
func Rotr64(a, b uint64) uint64 { return bits.RotateLeft64(a, -int(b&63)) }

// F32 returns the float32 for raw bits.
func F32(a uint64) float32 { return math.Float32frombits(uint32(a)) }

// F32Bits returns raw bits of a float32, zero-extended.
func F32Bits(f float32) uint64 { return uint64(math.Float32bits(f)) }

// F64 returns the float64 for raw bits.
func F64(a uint64) float64 { return math.Float64frombits(a) }

// F64Bits returns raw bits of a float64.
func F64Bits(f float64) uint64 { return math.Float64bits(f) }

// B2i converts a bool to wasm's i32 0/1.
func B2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// FMin32 implements f32.min: NaN-propagating, -0 < +0.
func FMin32(a, b float32) float32 {
	switch {
	case a != a || b != b:
		return float32(math.NaN())
	case a == 0 && b == 0:
		if math.Signbit(float64(a)) || math.Signbit(float64(b)) {
			return float32(math.Copysign(0, -1))
		}
		return 0
	case a < b:
		return a
	default:
		return b
	}
}

// FMax32 implements f32.max: NaN-propagating, +0 > -0.
func FMax32(a, b float32) float32 {
	switch {
	case a != a || b != b:
		return float32(math.NaN())
	case a == 0 && b == 0:
		if !math.Signbit(float64(a)) || !math.Signbit(float64(b)) {
			return 0
		}
		return float32(math.Copysign(0, -1))
	case a > b:
		return a
	default:
		return b
	}
}

// FMin64 implements f64.min.
func FMin64(a, b float64) float64 {
	switch {
	case a != a || b != b:
		return math.NaN()
	case a == 0 && b == 0:
		if math.Signbit(a) || math.Signbit(b) {
			return math.Copysign(0, -1)
		}
		return 0
	case a < b:
		return a
	default:
		return b
	}
}

// FMax64 implements f64.max.
func FMax64(a, b float64) float64 {
	switch {
	case a != a || b != b:
		return math.NaN()
	case a == 0 && b == 0:
		if !math.Signbit(a) || !math.Signbit(b) {
			return 0
		}
		return math.Copysign(0, -1)
	case a > b:
		return a
	default:
		return b
	}
}

// TruncSat helpers: wasm's non-saturating truncations trap outside range.

// TruncF32ToI32S truncates an f32 to signed i32, trapping per spec.
func TruncF32ToI32S(a uint64) uint64 { return TruncF64ToI32S(F64Bits(float64(F32(a)))) }

// TruncF32ToI32U truncates an f32 to unsigned i32, trapping per spec.
func TruncF32ToI32U(a uint64) uint64 { return TruncF64ToI32U(F64Bits(float64(F32(a)))) }

// TruncF32ToI64S truncates an f32 to signed i64, trapping per spec.
func TruncF32ToI64S(a uint64) uint64 { return TruncF64ToI64S(F64Bits(float64(F32(a)))) }

// TruncF32ToI64U truncates an f32 to unsigned i64, trapping per spec.
func TruncF32ToI64U(a uint64) uint64 { return TruncF64ToI64U(F64Bits(float64(F32(a)))) }

// TruncF64ToI32S truncates an f64 to signed i32, trapping per spec.
func TruncF64ToI32S(a uint64) uint64 {
	f := F64(a)
	if f != f {
		Trap("invalid conversion to integer")
	}
	t := math.Trunc(f)
	if t < math.MinInt32 || t > math.MaxInt32 {
		Trap("integer overflow")
	}
	return uint64(uint32(int32(t)))
}

// TruncF64ToI32U truncates an f64 to unsigned i32, trapping per spec.
func TruncF64ToI32U(a uint64) uint64 {
	f := F64(a)
	if f != f {
		Trap("invalid conversion to integer")
	}
	t := math.Trunc(f)
	if t < 0 || t > math.MaxUint32 {
		Trap("integer overflow")
	}
	return uint64(uint32(t))
}

// TruncF64ToI64S truncates an f64 to signed i64, trapping per spec.
func TruncF64ToI64S(a uint64) uint64 {
	f := F64(a)
	if f != f {
		Trap("invalid conversion to integer")
	}
	t := math.Trunc(f)
	// Valid range is [-2^63, 2^63); both bounds are exactly representable.
	if t < -9223372036854775808.0 || t >= 9223372036854775808.0 {
		Trap("integer overflow")
	}
	return uint64(int64(t))
}

// TruncF64ToI64U truncates an f64 to unsigned i64, trapping per spec.
func TruncF64ToI64U(a uint64) uint64 {
	f := F64(a)
	if f != f {
		Trap("invalid conversion to integer")
	}
	t := math.Trunc(f)
	// Valid range is [0, 2^64).
	if t < 0 || t >= 18446744073709551616.0 {
		Trap("integer overflow")
	}
	return uint64(t)
}
