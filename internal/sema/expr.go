// Package sema performs semantic analysis: it binds a parsed SELECT against
// the catalog and produces a typed, desugared query representation shared by
// every execution engine (the Wasm compiler and the three baselines).
//
// Desugaring keeps downstream engines small: BETWEEN becomes a conjunction,
// IN becomes a disjunction of equalities, AVG becomes SUM/COUNT, date ±
// interval folds into date literals, and all implicit numeric coercions
// become explicit Cast nodes with precise decimal scale bookkeeping.
package sema

import (
	"fmt"
	"strings"

	"wasmdb/internal/types"
)

// Expr is a bound, typed expression.
type Expr interface {
	Type() types.Type
	String() string
}

// OpKind enumerates primitive binary operators.
type OpKind int

// Binary operator kinds.
const (
	OpAdd OpKind = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opNames = [...]string{"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}

func (op OpKind) String() string { return opNames[op] }

// IsComparison reports whether the operator yields a boolean from two
// comparable operands.
func (op OpKind) IsComparison() bool { return op >= OpEq && op <= OpGe }

// ColRef references column Col of the query's table Table (by position in
// Query.Tables).
type ColRef struct {
	Table int
	Col   int
	T     types.Type
	// Name retains the source column name for display.
	Name string
}

// Type implements Expr.
func (c *ColRef) Type() types.Type { return c.T }
func (c *ColRef) String() string   { return fmt.Sprintf("#%d.%s", c.Table, c.Name) }

// Const is a literal value.
type Const struct{ V types.Value }

// Type implements Expr.
func (c *Const) Type() types.Type { return c.V.Type }
func (c *Const) String() string   { return c.V.String() }

// Param is a query parameter: an explicit ? placeholder bound during
// analysis, or a literal hoisted out of the expression tree by Parameterize
// so that queries differing only in constants share one compiled module.
// Idx is the slot in the execution-time parameter vector; T is fixed at bind
// time (from the opposite comparison operand), so the compiled code shape
// does not depend on the parameter's value.
type Param struct {
	Idx int
	T   types.Type
}

// Type implements Expr.
func (p *Param) Type() types.Type { return p.T }
func (p *Param) String() string   { return fmt.Sprintf("?%d", p.Idx) }

// Binary is a primitive binary operation over same-typed operands (casts
// have been inserted).
type Binary struct {
	Op   OpKind
	L, R Expr
	T    types.Type
}

// Type implements Expr.
func (b *Binary) Type() types.Type { return b.T }
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Not negates a boolean.
type Not struct{ E Expr }

// Type implements Expr.
func (n *Not) Type() types.Type { return types.TBool }
func (n *Not) String() string   { return "NOT " + n.E.String() }

// Cast converts between numeric representations. The pairs that occur are
// int32→int64, int64→float64, int32→float64, int→decimal, decimal→float64,
// decimal(s1)→decimal(s2) with s2 ≥ s1, and date→int32.
type Cast struct {
	E  Expr
	To types.Type
}

// Type implements Expr.
func (c *Cast) Type() types.Type { return c.To }
func (c *Cast) String() string   { return fmt.Sprintf("CAST(%s AS %s)", c.E.String(), c.To) }

// LikeKind classifies a LIKE pattern for specialized code generation.
type LikeKind int

// Pattern classes.
const (
	LikeExact    LikeKind = iota // no wildcards
	LikePrefix                   // abc%
	LikeSuffix                   // %abc
	LikeContains                 // %abc%
	LikeComplex                  // anything else (general matcher)
)

// Like matches a CHAR expression against a pattern.
type Like struct {
	E       Expr
	Pattern string
	Kind    LikeKind
	// Needle is the literal part for Exact/Prefix/Suffix/Contains.
	Needle string
	Not    bool
	// PIdx, when ≥ 0, is the parameter slot holding the needle (or, for
	// LikeComplex, the full pattern) bytes: the generated matcher reads them
	// from the parameter region instead of baking them into the constant
	// region. Kind and the byte length stay fixed per compiled module.
	PIdx int
}

// Type implements Expr.
func (l *Like) Type() types.Type { return types.TBool }
func (l *Like) String() string {
	not := ""
	if l.Not {
		not = " NOT"
	}
	return l.E.String() + not + " LIKE '" + l.Pattern + "'"
}

// ClassifyLike analyzes a LIKE pattern.
func ClassifyLike(pat string) (LikeKind, string) {
	if !strings.ContainsAny(pat, "%_") {
		return LikeExact, pat
	}
	if strings.Contains(pat, "_") {
		return LikeComplex, ""
	}
	inner := strings.Trim(pat, "%")
	if strings.Contains(inner, "%") {
		return LikeComplex, ""
	}
	pre := strings.HasPrefix(pat, "%")
	suf := strings.HasSuffix(pat, "%")
	switch {
	case pre && suf:
		return LikeContains, inner
	case suf:
		return LikePrefix, inner
	case pre:
		return LikeSuffix, inner
	default:
		return LikeComplex, "" // a % in the middle
	}
}

// When is one arm of a Case.
type When struct{ Cond, Then Expr }

// Case is a searched CASE with an ELSE (sema supplies a zero-value ELSE when
// the query omits it).
type Case struct {
	Whens []When
	Else  Expr
	T     types.Type
}

// Type implements Expr.
func (c *Case) Type() types.Type { return c.T }
func (c *Case) String() string {
	s := "CASE"
	for _, w := range c.Whens {
		s += " WHEN " + w.Cond.String() + " THEN " + w.Then.String()
	}
	return s + " ELSE " + c.Else.String() + " END"
}

// ExtractYear extracts the year of a DATE as an INT.
type ExtractYear struct{ E Expr }

// Type implements Expr.
func (e *ExtractYear) Type() types.Type { return types.TInt32 }
func (e *ExtractYear) String() string   { return "EXTRACT(YEAR FROM " + e.E.String() + ")" }

// AggFunc enumerates aggregate functions after desugaring (AVG is gone).
type AggFunc int

// Aggregate functions.
const (
	AggCountStar AggFunc = iota
	AggCount
	AggSum
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	return [...]string{"COUNT(*)", "COUNT", "SUM", "MIN", "MAX"}[f]
}

// Aggregate is one aggregate computation over the pre-aggregation tuple.
type Aggregate struct {
	Func AggFunc
	// Arg is nil for COUNT(*).
	Arg Expr
	T   types.Type
}

func (a Aggregate) String() string {
	if a.Arg == nil {
		return a.Func.String()
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Arg)
}

// AggRef references Query.Aggs[Idx] in post-aggregation expressions.
type AggRef struct {
	Idx int
	T   types.Type
}

// Type implements Expr.
func (a *AggRef) Type() types.Type { return a.T }
func (a *AggRef) String() string   { return fmt.Sprintf("agg%d", a.Idx) }

// KeyRef references Query.GroupBy[Idx] in post-aggregation expressions.
type KeyRef struct {
	Idx int
	T   types.Type
}

// Type implements Expr.
func (k *KeyRef) Type() types.Type { return k.T }
func (k *KeyRef) String() string   { return fmt.Sprintf("key%d", k.Idx) }

// Equal reports structural equality of two bound expressions.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case *ColRef:
		y, ok := b.(*ColRef)
		return ok && x.Table == y.Table && x.Col == y.Col
	case *Const:
		y, ok := b.(*Const)
		return ok && x.V.Type == y.V.Type && types.Compare(x.V, y.V) == 0 && x.V.S == y.V.S
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && x.T == y.T && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Not:
		y, ok := b.(*Not)
		return ok && Equal(x.E, y.E)
	case *Cast:
		y, ok := b.(*Cast)
		return ok && x.To == y.To && Equal(x.E, y.E)
	case *Like:
		y, ok := b.(*Like)
		return ok && x.Pattern == y.Pattern && x.Not == y.Not && x.PIdx == y.PIdx && Equal(x.E, y.E)
	case *Param:
		y, ok := b.(*Param)
		return ok && x.Idx == y.Idx && x.T == y.T
	case *Case:
		y, ok := b.(*Case)
		if !ok || len(x.Whens) != len(y.Whens) || x.T != y.T {
			return false
		}
		for i := range x.Whens {
			if !Equal(x.Whens[i].Cond, y.Whens[i].Cond) || !Equal(x.Whens[i].Then, y.Whens[i].Then) {
				return false
			}
		}
		return Equal(x.Else, y.Else)
	case *ExtractYear:
		y, ok := b.(*ExtractYear)
		return ok && Equal(x.E, y.E)
	case *AggRef:
		y, ok := b.(*AggRef)
		return ok && x.Idx == y.Idx
	case *KeyRef:
		y, ok := b.(*KeyRef)
		return ok && x.Idx == y.Idx
	}
	return false
}

// ColumnsUsed appends every distinct (table, column) pair referenced by e.
func ColumnsUsed(e Expr, seen map[[2]int]bool) {
	switch x := e.(type) {
	case *ColRef:
		seen[[2]int{x.Table, x.Col}] = true
	case *Binary:
		ColumnsUsed(x.L, seen)
		ColumnsUsed(x.R, seen)
	case *Not:
		ColumnsUsed(x.E, seen)
	case *Cast:
		ColumnsUsed(x.E, seen)
	case *Like:
		ColumnsUsed(x.E, seen)
	case *Case:
		for _, w := range x.Whens {
			ColumnsUsed(w.Cond, seen)
			ColumnsUsed(w.Then, seen)
		}
		ColumnsUsed(x.Else, seen)
	case *ExtractYear:
		ColumnsUsed(x.E, seen)
	}
}

// TablesUsed reports the set of table indices referenced by e.
func TablesUsed(e Expr, set map[int]bool) {
	cols := map[[2]int]bool{}
	ColumnsUsed(e, cols)
	for k := range cols {
		set[k[0]] = true
	}
}
