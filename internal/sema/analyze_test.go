package sema

import (
	"strings"
	"testing"

	"wasmdb/internal/catalog"
	"wasmdb/internal/sql"
	"wasmdb/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	_, err := cat.Create("r", []catalog.ColumnDef{
		{Name: "id", Type: types.TInt32},
		{Name: "x", Type: types.TInt32},
		{Name: "y", Type: types.TFloat64},
		{Name: "d", Type: types.TDate},
		{Name: "price", Type: types.TDecimal(12, 2)},
		{Name: "name", Type: types.TChar(10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cat.Create("s", []catalog.ColumnDef{
		{Name: "rid", Type: types.TInt32},
		{Name: "v", Type: types.TInt64},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func analyze(t *testing.T, cat *catalog.Catalog, q string) *Query {
	t.Helper()
	stmt, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	bound, err := Analyze(stmt, cat)
	if err != nil {
		t.Fatalf("analyze %q: %v", q, err)
	}
	return bound
}

func TestBindSimple(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, "SELECT x, y FROM r WHERE x < 42")
	if len(q.Tables) != 1 || q.Grouped {
		t.Fatalf("shape: %+v", q)
	}
	if len(q.Conjuncts) != 1 {
		t.Fatalf("conjuncts: %v", q.Conjuncts)
	}
	cmp := q.Conjuncts[0].(*Binary)
	if cmp.Op != OpLt {
		t.Errorf("op: %v", cmp.Op)
	}
	// int32 column vs small literal must stay int32.
	if cmp.L.Type() != types.TInt32 || cmp.R.Type() != types.TInt32 {
		t.Errorf("comparison types: %s vs %s", cmp.L.Type(), cmp.R.Type())
	}
}

func TestBindConjunctSplit(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, "SELECT x FROM r WHERE x < 10 AND y > 0.5 AND name = 'ab'")
	if len(q.Conjuncts) != 3 {
		t.Fatalf("conjuncts: %d", len(q.Conjuncts))
	}
}

func TestBindJoinCondition(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, "SELECT r.x FROM r JOIN s ON r.id = s.rid WHERE s.v > 7")
	if len(q.Tables) != 2 || len(q.Conjuncts) != 2 {
		t.Fatalf("shape: %d tables, %d conjuncts", len(q.Tables), len(q.Conjuncts))
	}
}

func TestBindAmbiguousAndUnknown(t *testing.T) {
	cat := testCatalog(t)
	cases := []string{
		"SELECT nope FROM r",
		"SELECT r.nope FROM r",
		"SELECT v FROM r",                    // column of s
		"SELECT id FROM r, s WHERE rid = id", // rid unambiguous, but...
		"SELECT x FROM r, r",                 // duplicate alias
	}
	// "id" exists only in r, "rid" only in s — make a real ambiguous case:
	cat2 := catalog.New()
	cat2.Create("a", []catalog.ColumnDef{{Name: "k", Type: types.TInt32}})
	cat2.Create("b", []catalog.ColumnDef{{Name: "k", Type: types.TInt32}})
	if _, err := sqlAnalyze(cat2, "SELECT k FROM a, b"); err == nil {
		t.Error("ambiguous column accepted")
	}
	for _, src := range cases[:3] {
		if _, err := sqlAnalyze(cat, src); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
	if _, err := sqlAnalyze(cat, cases[4]); err == nil {
		t.Error("duplicate alias accepted")
	}
}

func sqlAnalyze(cat *catalog.Catalog, q string) (*Query, error) {
	stmt, err := sql.ParseSelect(q)
	if err != nil {
		return nil, err
	}
	return Analyze(stmt, cat)
}

func TestBindAggregates(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, "SELECT x, COUNT(*), SUM(price), AVG(y) FROM r GROUP BY x")
	if !q.Grouped || len(q.GroupBy) != 1 {
		t.Fatalf("grouping: %+v", q)
	}
	// COUNT(*), SUM(price), SUM(y) [from AVG], and AVG reuses COUNT(*).
	if len(q.Aggs) != 3 {
		t.Fatalf("aggs: %v", q.Aggs)
	}
	if q.Aggs[0].Func != AggCountStar || q.Aggs[1].Func != AggSum || q.Aggs[2].Func != AggSum {
		t.Errorf("agg funcs: %v", q.Aggs)
	}
	// SUM over DECIMAL(12,2) keeps scale 2.
	if q.Aggs[1].T.Kind != types.Decimal || q.Aggs[1].T.Scale != 2 {
		t.Errorf("sum type: %v", q.Aggs[1].T)
	}
	// First select item is the group key.
	if _, ok := q.Select[0].Expr.(*KeyRef); !ok {
		t.Errorf("select[0]: %T", q.Select[0].Expr)
	}
	// AVG desugars to a float division.
	div, ok := q.Select[3].Expr.(*Binary)
	if !ok || div.Op != OpDiv || div.T != types.TFloat64 {
		t.Errorf("avg: %v", q.Select[3].Expr)
	}
}

func TestBindGroupByValidation(t *testing.T) {
	cat := testCatalog(t)
	if _, err := sqlAnalyze(cat, "SELECT y, COUNT(*) FROM r GROUP BY x"); err == nil {
		t.Error("non-grouped column in select accepted")
	}
	if _, err := sqlAnalyze(cat, "SELECT x + 1, COUNT(*) FROM r GROUP BY x + 1"); err != nil {
		t.Errorf("group-by expression rejected: %v", err)
	}
	if _, err := sqlAnalyze(cat, "SELECT COUNT(*) FROM r WHERE COUNT(*) > 1"); err == nil {
		t.Error("aggregate in WHERE accepted")
	}
}

func TestBindHaving(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, "SELECT x, COUNT(*) FROM r GROUP BY x HAVING COUNT(*) > 2 AND x < 10")
	if len(q.Having) != 2 {
		t.Fatalf("AND chain not flattened: %v", q.Having)
	}
	// HAVING alone makes the query a single-group aggregation.
	q = analyze(t, cat, "SELECT COUNT(*) FROM r HAVING COUNT(*) > 0")
	if !q.Grouped || len(q.Having) != 1 {
		t.Errorf("keyless having: grouped=%v having=%v", q.Grouped, q.Having)
	}
	if _, err := sqlAnalyze(cat, "SELECT COUNT(*) FROM r HAVING y > 1"); err == nil {
		t.Error("non-grouped column in HAVING accepted")
	}
	if _, err := sqlAnalyze(cat, "SELECT x, COUNT(*) FROM r GROUP BY x HAVING x + 1"); err == nil {
		t.Error("non-boolean HAVING accepted")
	}
}

func TestBindDateArithmeticFolds(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, "SELECT x FROM r WHERE d <= DATE '1998-12-01' - INTERVAL '90' DAY")
	cmp := q.Conjuncts[0].(*Binary)
	c, ok := cmp.R.(*Const)
	if !ok || c.V.Type.Kind != types.Date {
		t.Fatalf("rhs: %v", cmp.R)
	}
	if types.FormatDate(int32(c.V.I)) != "1998-09-02" {
		t.Errorf("folded date: %s", types.FormatDate(int32(c.V.I)))
	}
}

func TestBindDesugarings(t *testing.T) {
	cat := testCatalog(t)
	// BETWEEN → conjunction of comparisons.
	q := analyze(t, cat, "SELECT x FROM r WHERE x BETWEEN 5 AND 10")
	if len(q.Conjuncts) != 2 {
		t.Errorf("between: %v", q.Conjuncts)
	}
	// IN → disjunction of equalities.
	q = analyze(t, cat, "SELECT x FROM r WHERE name IN ('a', 'b', 'c')")
	or := q.Conjuncts[0].(*Binary)
	if or.Op != OpOr {
		t.Errorf("in: %v", q.Conjuncts[0])
	}
	// NOT BETWEEN wraps in Not.
	q = analyze(t, cat, "SELECT x FROM r WHERE x NOT BETWEEN 5 AND 10")
	if _, ok := q.Conjuncts[0].(*Not); !ok {
		t.Errorf("not between: %v", q.Conjuncts[0])
	}
}

func TestBindLikeClassification(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		pat    string
		kind   LikeKind
		needle string
	}{
		{"PROMO%", LikePrefix, "PROMO"},
		{"%BRASS", LikeSuffix, "BRASS"},
		{"%green%", LikeContains, "green"},
		{"exact", LikeExact, "exact"},
		{"a%b", LikeComplex, ""},
		{"a_c", LikeComplex, ""},
	}
	for _, c := range cases {
		q := analyze(t, cat, "SELECT x FROM r WHERE name LIKE '"+c.pat+"'")
		like := q.Conjuncts[0].(*Like)
		if like.Kind != c.kind || like.Needle != c.needle {
			t.Errorf("pattern %q: kind=%v needle=%q", c.pat, like.Kind, like.Needle)
		}
	}
}

func TestBindCaseTyping(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, "SELECT SUM(CASE WHEN name LIKE 'P%' THEN price ELSE 0 END) FROM r")
	agg := q.Aggs[0]
	ce, ok := agg.Arg.(*Case)
	if !ok {
		t.Fatalf("agg arg: %T", agg.Arg)
	}
	if ce.T.Kind != types.Decimal || ce.T.Scale != 2 {
		t.Errorf("case type: %v", ce.T)
	}
	// ELSE 0 must be a decimal(…,2) zero.
	els := ce.Else.(*Const)
	if els.V.Type.Kind != types.Decimal || els.V.I != 0 {
		t.Errorf("else: %v", els.V)
	}
}

func TestBindDecimalArithmetic(t *testing.T) {
	cat := testCatalog(t)
	// price * (1 - 0.05): mul adds scales.
	q := analyze(t, cat, "SELECT price * (1 - 0.05) FROM r")
	e := q.Select[0].Expr.(*Binary)
	if e.Op != OpMul || e.T.Kind != types.Decimal {
		t.Fatalf("expr: %v %v", e.Op, e.T)
	}
	if e.T.Scale != 4 {
		t.Errorf("mul scale = %d, want 4", e.T.Scale)
	}
	// The (1 - 0.05) side folds scales correctly: scale 2.
	if e.R.Type().Scale != 2 {
		t.Errorf("rhs scale = %d, want 2", e.R.Type().Scale)
	}
}

func TestBindDivisionIsFloat(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, "SELECT price / x FROM r")
	e := q.Select[0].Expr.(*Binary)
	if e.Op != OpDiv || e.T != types.TFloat64 {
		t.Errorf("div: %v %v", e.Op, e.T)
	}
}

func TestBindStar(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, "SELECT * FROM r")
	if len(q.Select) != 6 {
		t.Errorf("star expansion: %d columns", len(q.Select))
	}
	if q.Select[5].Name != "name" {
		t.Errorf("order: %v", q.Select[5].Name)
	}
}

func TestBindOrderByAlias(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, "SELECT SUM(price) AS revenue FROM r GROUP BY x ORDER BY revenue DESC")
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Fatalf("order: %+v", q.OrderBy)
	}
	if _, ok := q.OrderBy[0].Expr.(*AggRef); !ok {
		t.Errorf("order expr: %T", q.OrderBy[0].Expr)
	}
}

func TestBindExtractYear(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, "SELECT EXTRACT(YEAR FROM d) FROM r")
	if _, ok := q.Select[0].Expr.(*ExtractYear); !ok {
		t.Errorf("extract: %T", q.Select[0].Expr)
	}
	// Constant folding.
	q = analyze(t, cat, "SELECT EXTRACT(YEAR FROM DATE '1995-03-04') FROM r")
	c := q.Select[0].Expr.(*Const)
	if c.V.I != 1995 {
		t.Errorf("folded year: %v", c.V)
	}
}

func TestExprStringIsReadable(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, "SELECT x FROM r WHERE x < 42 AND name LIKE 'a%'")
	s := q.Conjuncts[0].String() + " " + q.Conjuncts[1].String()
	if !strings.Contains(s, "<") || !strings.Contains(s, "LIKE") {
		t.Errorf("unreadable: %s", s)
	}
}
