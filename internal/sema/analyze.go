package sema

import (
	"fmt"

	"wasmdb/internal/catalog"
	"wasmdb/internal/sql"
	"wasmdb/internal/storage"
	"wasmdb/internal/types"
)

// TableRef is one bound table occurrence.
type TableRef struct {
	Table *storage.Table
	Alias string
}

// OutputCol is one result column.
type OutputCol struct {
	Name string
	Expr Expr
}

// OrderKey is one bound ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Query is the bound form of a SELECT. If Grouped, Select and OrderBy
// expressions are in the post-aggregation domain (KeyRef/AggRef/Const and
// scalar operations over them); otherwise they are in the scan domain
// (ColRef etc.).
type Query struct {
	Tables    []TableRef
	Conjuncts []Expr
	GroupBy   []Expr
	Aggs      []Aggregate
	Grouped   bool
	// Having holds the post-aggregation filter conjuncts (post-agg domain:
	// KeyRef/AggRef/Const and scalar operations over them). Empty when the
	// query has no HAVING clause.
	Having  []Expr
	Select  []OutputCol
	OrderBy []OrderKey
	Limit   int64

	// NumParams counts the explicit ? placeholders; ParamTypes[i] is the
	// type inferred for placeholder i at bind time.
	NumParams  int
	ParamTypes []types.Type
	// LimitParam is the placeholder ordinal of an explicit LIMIT ?, or -1.
	// The caller resolves it into Limit before planning.
	LimitParam int
	// TotalParams is the size of the execution-time parameter vector:
	// NumParams explicit placeholders plus any literals hoisted by
	// Parameterize (and the limit, when parameterized).
	TotalParams int
	// LimitSlot is the parameter ordinal holding the LIMIT value when
	// Parameterize hoisted it, or -1 when the limit is compiled literally.
	LimitSlot int
}

// Analyze binds a parsed SELECT against the catalog.
func Analyze(stmt *sql.SelectStmt, cat *catalog.Catalog) (*Query, error) {
	b := &binder{cat: cat, q: &Query{
		Limit:       stmt.Limit,
		NumParams:   stmt.NumParams,
		LimitParam:  stmt.LimitParam,
		TotalParams: stmt.NumParams,
		LimitSlot:   -1,
	}}
	if stmt.NumParams > 0 {
		b.q.ParamTypes = make([]types.Type, stmt.NumParams)
	}
	if stmt.LimitParam >= 0 {
		b.q.ParamTypes[stmt.LimitParam] = types.TInt64
	}
	// Tables and join conditions.
	seen := map[string]bool{}
	for _, fi := range stmt.From {
		tbl, err := cat.Table(fi.Table)
		if err != nil {
			return nil, err
		}
		if seen[fi.Alias] {
			return nil, fmt.Errorf("sema: duplicate table alias %q", fi.Alias)
		}
		seen[fi.Alias] = true
		b.q.Tables = append(b.q.Tables, TableRef{Table: tbl, Alias: fi.Alias})
	}
	for _, fi := range stmt.From {
		if fi.On == nil {
			continue
		}
		cond, err := b.bindScalar(fi.On)
		if err != nil {
			return nil, err
		}
		if cond.Type().Kind != types.Bool {
			return nil, fmt.Errorf("sema: JOIN condition is not boolean")
		}
		b.addConjuncts(cond)
	}
	if stmt.Where != nil {
		cond, err := b.bindScalar(stmt.Where)
		if err != nil {
			return nil, err
		}
		if cond.Type().Kind != types.Bool {
			return nil, fmt.Errorf("sema: WHERE clause is not boolean")
		}
		b.addConjuncts(cond)
	}
	for _, g := range stmt.GroupBy {
		e, err := b.bindScalar(g)
		if err != nil {
			return nil, err
		}
		b.q.GroupBy = append(b.q.GroupBy, e)
	}

	// Detect aggregation: any aggregate in SELECT/ORDER BY, GROUP BY, or a
	// HAVING clause (which filters groups even without explicit keys).
	hasAgg := len(stmt.GroupBy) > 0 || stmt.Having != nil
	for _, it := range stmt.Items {
		if !it.Star && containsAggregate(it.Expr) {
			hasAgg = true
		}
	}
	for _, oi := range stmt.OrderBy {
		if containsAggregate(oi.Expr) {
			hasAgg = true
		}
	}
	b.q.Grouped = hasAgg

	// Select list.
	aliases := map[string]Expr{}
	for i, it := range stmt.Items {
		if it.Star {
			if hasAgg {
				return nil, fmt.Errorf("sema: SELECT * cannot be combined with aggregation")
			}
			for ti, tr := range b.q.Tables {
				for ci, col := range tr.Table.Columns {
					b.q.Select = append(b.q.Select, OutputCol{
						Name: col.Name,
						Expr: &ColRef{Table: ti, Col: ci, T: col.Type, Name: col.Name},
					})
				}
			}
			continue
		}
		e, err := b.bindMaybeAgg(it.Expr)
		if err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*sql.ColumnRef); ok {
				name = cr.Name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		b.q.Select = append(b.q.Select, OutputCol{Name: name, Expr: e})
		if it.Alias != "" {
			aliases[it.Alias] = e
		}
	}

	// HAVING: a post-aggregation boolean filter over the same domain as the
	// grouped select list. Its top-level AND chain is flattened so codegen
	// can evaluate the conjuncts without short-circuit plumbing.
	if stmt.Having != nil {
		h, err := b.bindMaybeAgg(stmt.Having)
		if err != nil {
			return nil, err
		}
		if h.Type().Kind != types.Bool {
			return nil, fmt.Errorf("sema: HAVING clause is not boolean")
		}
		b.addHaving(h)
	}

	// ORDER BY, with select-alias resolution.
	for _, oi := range stmt.OrderBy {
		if cr, ok := oi.Expr.(*sql.ColumnRef); ok && cr.Table == "" {
			if bound, ok := aliases[cr.Name]; ok {
				b.q.OrderBy = append(b.q.OrderBy, OrderKey{Expr: bound, Desc: oi.Desc})
				continue
			}
		}
		e, err := b.bindMaybeAgg(oi.Expr)
		if err != nil {
			return nil, err
		}
		b.q.OrderBy = append(b.q.OrderBy, OrderKey{Expr: e, Desc: oi.Desc})
	}
	return b.q, nil
}

func containsAggregate(e sql.Expr) bool {
	switch x := e.(type) {
	case *sql.FuncCall:
		switch x.Name {
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			return true
		}
		for _, a := range x.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *sql.BinaryExpr:
		return containsAggregate(x.L) || containsAggregate(x.R)
	case *sql.UnaryExpr:
		return containsAggregate(x.E)
	case *sql.BetweenExpr:
		return containsAggregate(x.E) || containsAggregate(x.Lo) || containsAggregate(x.Hi)
	case *sql.InExpr:
		if containsAggregate(x.E) {
			return true
		}
		for _, a := range x.List {
			if containsAggregate(a) {
				return true
			}
		}
	case *sql.LikeExpr:
		return containsAggregate(x.E)
	case *sql.CaseExpr:
		for _, w := range x.Whens {
			if containsAggregate(w.Cond) || containsAggregate(w.Then) {
				return true
			}
		}
		if x.Else != nil {
			return containsAggregate(x.Else)
		}
	}
	return false
}

type binder struct {
	cat *catalog.Catalog
	q   *Query
}

// cmpOps maps comparison operator spellings to OpKind.
var cmpOps = map[string]OpKind{"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}

// bindPlaceholder types an explicit ? placeholder and records its type for
// argument conversion at execution time.
func (b *binder) bindPlaceholder(ph *sql.Placeholder, t types.Type) *Param {
	b.q.ParamTypes[ph.Idx] = t
	return &Param{Idx: ph.Idx, T: t}
}

// bindOperand binds a comparison operand, typing a ? placeholder from the
// already-bound opposite operand.
func (b *binder) bindOperand(e sql.Expr, opposite Expr) (Expr, error) {
	if ph, ok := e.(*sql.Placeholder); ok {
		return b.bindPlaceholder(ph, opposite.Type()), nil
	}
	return b.bind(e)
}

// addConjuncts flattens a boolean expression's top-level AND chain.
func (b *binder) addConjuncts(e Expr) {
	if bin, ok := e.(*Binary); ok && bin.Op == OpAnd {
		b.addConjuncts(bin.L)
		b.addConjuncts(bin.R)
		return
	}
	b.q.Conjuncts = append(b.q.Conjuncts, e)
}

// addHaving flattens a HAVING expression's top-level AND chain.
func (b *binder) addHaving(e Expr) {
	if bin, ok := e.(*Binary); ok && bin.Op == OpAnd {
		b.addHaving(bin.L)
		b.addHaving(bin.R)
		return
	}
	b.q.Having = append(b.q.Having, e)
}

// bindScalar binds an expression in which aggregates are not allowed.
func (b *binder) bindScalar(e sql.Expr) (Expr, error) {
	if containsAggregate(e) {
		return nil, fmt.Errorf("sema: aggregate not allowed here")
	}
	return b.bind(e)
}

// bindMaybeAgg binds a SELECT/ORDER BY expression. Under aggregation, the
// result is rewritten into the post-aggregation domain: aggregate calls
// become AggRef, group-key subexpressions become KeyRef, and any remaining
// column reference is an error.
func (b *binder) bindMaybeAgg(e sql.Expr) (Expr, error) {
	bound, err := b.bind(e)
	if err != nil {
		return nil, err
	}
	if !b.q.Grouped {
		return bound, nil
	}
	rewritten := b.rewritePostAgg(bound)
	if err := checkNoColumns(rewritten); err != nil {
		return nil, fmt.Errorf("sema: %s must appear in GROUP BY", err)
	}
	return rewritten, nil
}

// rewritePostAgg replaces group-key-equal subtrees with KeyRef. AggRef nodes
// are already produced during bind.
func (b *binder) rewritePostAgg(e Expr) Expr {
	for i, g := range b.q.GroupBy {
		if Equal(e, g) {
			return &KeyRef{Idx: i, T: g.Type()}
		}
	}
	switch x := e.(type) {
	case *Binary:
		return &Binary{Op: x.Op, L: b.rewritePostAgg(x.L), R: b.rewritePostAgg(x.R), T: x.T}
	case *Not:
		return &Not{E: b.rewritePostAgg(x.E)}
	case *Cast:
		return &Cast{E: b.rewritePostAgg(x.E), To: x.To}
	case *Like:
		y := *x
		y.E = b.rewritePostAgg(x.E)
		return &y
	case *Case:
		y := &Case{Else: b.rewritePostAgg(x.Else), T: x.T}
		for _, w := range x.Whens {
			y.Whens = append(y.Whens, When{Cond: b.rewritePostAgg(w.Cond), Then: b.rewritePostAgg(w.Then)})
		}
		return y
	case *ExtractYear:
		return &ExtractYear{E: b.rewritePostAgg(x.E)}
	}
	return e
}

func checkNoColumns(e Expr) error {
	cols := map[[2]int]bool{}
	ColumnsUsed(e, cols)
	if len(cols) > 0 {
		return fmt.Errorf("column reference %s", e)
	}
	return nil
}

// internAgg adds an aggregate (deduplicated structurally) and returns a
// reference to it.
func (b *binder) internAgg(a Aggregate) *AggRef {
	for i, ex := range b.q.Aggs {
		if ex.Func == a.Func {
			if ex.Arg == nil && a.Arg == nil {
				return &AggRef{Idx: i, T: ex.T}
			}
			if ex.Arg != nil && a.Arg != nil && Equal(ex.Arg, a.Arg) {
				return &AggRef{Idx: i, T: ex.T}
			}
		}
	}
	b.q.Aggs = append(b.q.Aggs, a)
	return &AggRef{Idx: len(b.q.Aggs) - 1, T: a.T}
}

func (b *binder) bind(e sql.Expr) (Expr, error) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		return b.bindColumn(x)
	case *sql.IntLit:
		return &Const{V: types.NewInt64(x.V)}, nil
	case *sql.FloatLit:
		return &Const{V: types.NewFloat64(x.V)}, nil
	case *sql.NumericLit:
		text := x.Text
		scale := 0
		if dot := indexByte(text, '.'); dot >= 0 {
			scale = len(text) - dot - 1
		}
		raw, err := types.ParseDecimal(text, scale)
		if err != nil {
			return nil, err
		}
		return &Const{V: types.NewDecimal(raw, len(text), scale)}, nil
	case *sql.StringLit:
		return &Const{V: types.NewChar(x.V, len(x.V))}, nil
	case *sql.BoolLit:
		return &Const{V: types.NewBool(x.V)}, nil
	case *sql.DateLit:
		return &Const{V: types.NewDate(x.Days)}, nil
	case *sql.IntervalLit:
		return nil, fmt.Errorf("sema: INTERVAL is only valid in date arithmetic")
	case *sql.Placeholder:
		// Reached only outside the typed positions handled explicitly
		// (comparison operands, BETWEEN bounds, IN lists, LIMIT): without an
		// opposite operand there is nothing to infer the type from.
		return nil, fmt.Errorf("sema: ? placeholder is only supported as a comparison operand, BETWEEN bound, IN list item, or LIMIT")
	case *sql.BinaryExpr:
		return b.bindBinary(x)
	case *sql.UnaryExpr:
		inner, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			if inner.Type().Kind != types.Bool {
				return nil, fmt.Errorf("sema: NOT requires a boolean")
			}
			return &Not{E: inner}, nil
		}
		// Unary minus: 0 - e.
		zero := &Const{V: types.NewInt64(0)}
		return b.arith(OpSub, zero, inner)
	case *sql.BetweenExpr:
		v, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindOperand(x.Lo, v)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindOperand(x.Hi, v)
		if err != nil {
			return nil, err
		}
		ge, err := b.compare(OpGe, v, lo)
		if err != nil {
			return nil, err
		}
		le, err := b.compare(OpLe, v, hi)
		if err != nil {
			return nil, err
		}
		var out Expr = &Binary{Op: OpAnd, L: ge, R: le, T: types.TBool}
		if x.Not {
			out = &Not{E: out}
		}
		return out, nil
	case *sql.InExpr:
		v, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		var out Expr
		for _, item := range x.List {
			it, err := b.bindOperand(item, v)
			if err != nil {
				return nil, err
			}
			eq, err := b.compare(OpEq, v, it)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = eq
			} else {
				out = &Binary{Op: OpOr, L: out, R: eq, T: types.TBool}
			}
		}
		if x.Not {
			out = &Not{E: out}
		}
		return out, nil
	case *sql.LikeExpr:
		v, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		if v.Type().Kind != types.Char {
			return nil, fmt.Errorf("sema: LIKE requires a CHAR operand")
		}
		kind, needle := ClassifyLike(x.Pattern)
		return &Like{E: v, Pattern: x.Pattern, Kind: kind, Needle: needle, Not: x.Not, PIdx: -1}, nil
	case *sql.CaseExpr:
		return b.bindCase(x)
	case *sql.FuncCall:
		return b.bindFunc(x)
	}
	return nil, fmt.Errorf("sema: unsupported expression %T", e)
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

func (b *binder) bindColumn(cr *sql.ColumnRef) (Expr, error) {
	found := -1
	col := -1
	for ti, tr := range b.q.Tables {
		if cr.Table != "" && tr.Alias != cr.Table {
			continue
		}
		ci := tr.Table.ColumnIndex(cr.Name)
		if ci < 0 {
			continue
		}
		if found >= 0 {
			return nil, fmt.Errorf("sema: ambiguous column %q", cr.Name)
		}
		found, col = ti, ci
	}
	if found < 0 {
		if cr.Table != "" {
			return nil, fmt.Errorf("sema: unknown column %s.%s", cr.Table, cr.Name)
		}
		return nil, fmt.Errorf("sema: unknown column %q", cr.Name)
	}
	c := b.q.Tables[found].Table.Columns[col]
	return &ColRef{Table: found, Col: col, T: c.Type, Name: c.Name}, nil
}

func (b *binder) bindBinary(x *sql.BinaryExpr) (Expr, error) {
	// Date ± interval folds to a date constant when the date side is
	// constant (TPC-H style literals).
	if iv, ok := x.R.(*sql.IntervalLit); ok && (x.Op == "+" || x.Op == "-") {
		l, err := b.bind(x.L)
		if err != nil {
			return nil, err
		}
		c, ok := l.(*Const)
		if !ok || c.V.Type.Kind != types.Date {
			return nil, fmt.Errorf("sema: date arithmetic requires a constant date operand")
		}
		n := iv.N
		if x.Op == "-" {
			n = -n
		}
		days, err := types.AddDateInterval(int32(c.V.I), n, iv.Unit)
		if err != nil {
			return nil, err
		}
		return &Const{V: types.NewDate(days)}, nil
	}

	// A ? placeholder as a comparison operand takes the opposite operand's
	// type, so the compiled code shape is fixed at prepare time.
	if op, isCmp := cmpOps[x.Op]; isCmp {
		lph, lok := x.L.(*sql.Placeholder)
		rph, rok := x.R.(*sql.Placeholder)
		switch {
		case lok && rok:
			return nil, fmt.Errorf("sema: cannot infer the type of ? compared with ?")
		case lok:
			r, err := b.bind(x.R)
			if err != nil {
				return nil, err
			}
			return b.compare(op, b.bindPlaceholder(lph, r.Type()), r)
		case rok:
			l, err := b.bind(x.L)
			if err != nil {
				return nil, err
			}
			return b.compare(op, l, b.bindPlaceholder(rph, l.Type()))
		}
	}

	l, err := b.bind(x.L)
	if err != nil {
		return nil, err
	}
	r, err := b.bind(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "AND", "OR":
		if l.Type().Kind != types.Bool || r.Type().Kind != types.Bool {
			return nil, fmt.Errorf("sema: %s requires boolean operands", x.Op)
		}
		op := OpAnd
		if x.Op == "OR" {
			op = OpOr
		}
		return &Binary{Op: op, L: l, R: r, T: types.TBool}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return b.compare(cmpOps[x.Op], l, r)
	case "+", "-", "*", "/", "%":
		ops := map[string]OpKind{"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod}
		return b.arith(ops[x.Op], l, r)
	}
	return nil, fmt.Errorf("sema: unknown operator %q", x.Op)
}

// compare coerces operands to a common type and builds a comparison.
func (b *binder) compare(op OpKind, l, r Expr) (Expr, error) {
	lk, rk := l.Type().Kind, r.Type().Kind
	switch {
	case lk == types.Char && rk == types.Char:
		// Pad the shorter side's width semantics at execution; widths may
		// differ between literal and column.
	case lk == types.Date && rk == types.Date:
	case lk == types.Bool && rk == types.Bool:
		if op != OpEq && op != OpNe {
			return nil, fmt.Errorf("sema: booleans only support = and <>")
		}
	case l.Type().Numeric() && r.Type().Numeric():
		var err error
		l, r, _, err = b.numericAlign(l, r, false)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sema: cannot compare %s with %s", l.Type(), r.Type())
	}
	return &Binary{Op: op, L: l, R: r, T: types.TBool}, nil
}

// arith coerces operands and builds an arithmetic node.
func (b *binder) arith(op OpKind, l, r Expr) (Expr, error) {
	if !l.Type().Numeric() || !r.Type().Numeric() {
		return nil, fmt.Errorf("sema: arithmetic requires numeric operands, got %s and %s", l.Type(), r.Type())
	}
	if op == OpMod {
		li, ri := isIntKind(l.Type().Kind), isIntKind(r.Type().Kind)
		if !li || !ri {
			return nil, fmt.Errorf("sema: %% requires integer operands")
		}
		l, r = mkCast(l, types.TInt64), mkCast(r, types.TInt64)
		return &Binary{Op: OpMod, L: l, R: r, T: types.TInt64}, nil
	}
	if op == OpDiv {
		// Division always computes in floating point (ratios, averages).
		return &Binary{Op: OpDiv, L: mkCast(l, types.TFloat64), R: mkCast(r, types.TFloat64), T: types.TFloat64}, nil
	}
	var err error
	var t types.Type
	l, r, t, err = b.numericAlign(l, r, op == OpMul)
	if err != nil {
		return nil, err
	}
	if op == OpMul && t.Kind == types.Decimal {
		// Multiplication adds scales; numericAlign left operand scales
		// untouched for mul.
		ls, rs := l.Type().Scale, r.Type().Scale
		t = types.TDecimal(min(l.Type().Prec+r.Type().Prec, 38), ls+rs)
	}
	return &Binary{Op: op, L: l, R: r, T: t}, nil
}

// numericAlign casts two numeric operands to a common representation.
// For multiplication of decimals the scales are left unequal (scales add);
// for everything else decimal scales are aligned to the maximum.
func (b *binder) numericAlign(l, r Expr, forMul bool) (Expr, Expr, types.Type, error) {
	lt, rt := l.Type(), r.Type()
	if lt.Kind == types.Float64 || rt.Kind == types.Float64 {
		return mkCast(l, types.TFloat64), mkCast(r, types.TFloat64), types.TFloat64, nil
	}
	if lt.Kind == types.Decimal || rt.Kind == types.Decimal {
		ls, rs := 0, 0
		lp, rp := 19, 19
		if lt.Kind == types.Decimal {
			ls, lp = lt.Scale, lt.Prec
		}
		if rt.Kind == types.Decimal {
			rs, rp = rt.Scale, rt.Prec
		}
		if forMul {
			return mkCast(l, types.TDecimal(lp, ls)), mkCast(r, types.TDecimal(rp, rs)), types.TDecimal(min(lp+rp, 38), ls+rs), nil
		}
		s := max(ls, rs)
		p := min(max(lp, rp)+1, 38)
		t := types.TDecimal(p, s)
		return mkCast(l, t), mkCast(r, t), t, nil
	}
	// Integers: preserve int32 when both sides are (or fit) int32, so that
	// generated code stays in 32-bit operations; otherwise widen to int64.
	if lt.Kind == types.Int32 && rt.Kind == types.Int32 {
		return l, r, types.TInt32, nil
	}
	if lt.Kind == types.Int32 {
		if c, ok := r.(*Const); ok && c.V.Type.Kind == types.Int64 && fitsInt32(c.V.I) {
			return l, &Const{V: types.NewInt32(int32(c.V.I))}, types.TInt32, nil
		}
	}
	if rt.Kind == types.Int32 {
		if c, ok := l.(*Const); ok && c.V.Type.Kind == types.Int64 && fitsInt32(c.V.I) {
			return &Const{V: types.NewInt32(int32(c.V.I))}, r, types.TInt32, nil
		}
	}
	return mkCast(l, types.TInt64), mkCast(r, types.TInt64), types.TInt64, nil
}

func fitsInt32(v int64) bool { return v >= -(1<<31) && v < 1<<31 }

func isIntKind(k types.Kind) bool { return k == types.Int32 || k == types.Int64 }

// mkCast wraps e in a Cast unless it already has the target type; constant
// operands are folded immediately.
func mkCast(e Expr, to types.Type) Expr {
	from := e.Type()
	if from == to {
		return e
	}
	if from.Kind == to.Kind && from.Kind == types.Decimal && from.Scale == to.Scale {
		return e // precision-only difference is representationally free
	}
	if c, ok := e.(*Const); ok {
		if v, ok := foldCast(c.V, to); ok {
			return &Const{V: v}
		}
	}
	return &Cast{E: e, To: to}
}

func foldCast(v types.Value, to types.Type) (types.Value, bool) {
	switch to.Kind {
	case types.Int64:
		if isIntKind(v.Type.Kind) {
			return types.NewInt64(v.I), true
		}
	case types.Float64:
		switch v.Type.Kind {
		case types.Int32, types.Int64:
			return types.NewFloat64(float64(v.I)), true
		case types.Float64:
			return v, true
		case types.Decimal:
			return types.NewFloat64(float64(v.I) / float64(types.Pow10(v.Type.Scale))), true
		}
	case types.Decimal:
		switch v.Type.Kind {
		case types.Int32, types.Int64:
			return types.NewDecimal(v.I*types.Pow10(to.Scale), to.Prec, to.Scale), true
		case types.Decimal:
			if to.Scale >= v.Type.Scale {
				return types.NewDecimal(v.I*types.Pow10(to.Scale-v.Type.Scale), to.Prec, to.Scale), true
			}
		}
	}
	return types.Value{}, false
}

func (b *binder) bindCase(x *sql.CaseExpr) (Expr, error) {
	out := &Case{}
	var arms []Expr
	for _, w := range x.Whens {
		cond, err := b.bind(w.Cond)
		if err != nil {
			return nil, err
		}
		if cond.Type().Kind != types.Bool {
			return nil, fmt.Errorf("sema: CASE WHEN condition is not boolean")
		}
		then, err := b.bind(w.Then)
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, When{Cond: cond, Then: then})
		arms = append(arms, then)
	}
	if x.Else != nil {
		els, err := b.bind(x.Else)
		if err != nil {
			return nil, err
		}
		out.Else = els
		arms = append(arms, els)
	}
	// Find the common result type by pairwise alignment.
	t := arms[0].Type()
	for _, a := range arms[1:] {
		l, _, tt, err := b.numericAlignOrSame(arms[0], a, t)
		if err != nil {
			return nil, err
		}
		_ = l
		t = tt
	}
	for i := range out.Whens {
		out.Whens[i].Then = mkCast(out.Whens[i].Then, t)
	}
	if out.Else == nil {
		z, err := zeroValue(t)
		if err != nil {
			return nil, err
		}
		out.Else = &Const{V: z}
	} else {
		out.Else = mkCast(out.Else, t)
	}
	out.T = t
	return out, nil
}

// numericAlignOrSame aligns numerics or verifies identical non-numeric types.
func (b *binder) numericAlignOrSame(l, r Expr, cur types.Type) (Expr, Expr, types.Type, error) {
	if l.Type().Numeric() && r.Type().Numeric() {
		// Result type grows to cover both.
		_, _, t, err := b.numericAlign(&typed{cur}, r, false)
		return l, r, t, err
	}
	if cur.Kind != r.Type().Kind {
		return nil, nil, types.Type{}, fmt.Errorf("sema: CASE arms have incompatible types %s and %s", cur, r.Type())
	}
	if cur.Kind == types.Char && r.Type().Length > cur.Length {
		cur = r.Type()
	}
	return l, r, cur, nil
}

// typed is a placeholder expression carrying only a type, used for type
// computations.
type typed struct{ t types.Type }

func (t *typed) Type() types.Type { return t.t }
func (t *typed) String() string   { return "?" }

func zeroValue(t types.Type) (types.Value, error) {
	switch t.Kind {
	case types.Bool:
		return types.NewBool(false), nil
	case types.Int32:
		return types.NewInt32(0), nil
	case types.Int64:
		return types.NewInt64(0), nil
	case types.Float64:
		return types.NewFloat64(0), nil
	case types.Decimal:
		return types.NewDecimal(0, t.Prec, t.Scale), nil
	case types.Date:
		return types.NewDate(0), nil
	case types.Char:
		return types.NewChar("", t.Length), nil
	}
	return types.Value{}, fmt.Errorf("sema: no zero value for %s", t)
}

func (b *binder) bindFunc(x *sql.FuncCall) (Expr, error) {
	switch x.Name {
	case "EXTRACT_YEAR":
		arg, err := b.bind(x.Args[0])
		if err != nil {
			return nil, err
		}
		if arg.Type().Kind != types.Date {
			return nil, fmt.Errorf("sema: EXTRACT(YEAR ...) requires a DATE")
		}
		if c, ok := arg.(*Const); ok {
			return &Const{V: types.NewInt32(int32(types.ExtractYear(int32(c.V.I))))}, nil
		}
		return &ExtractYear{E: arg}, nil
	case "COUNT":
		if x.Star {
			return b.internAgg(Aggregate{Func: AggCountStar, T: types.TInt64}), nil
		}
		arg, err := b.bindScalar(x.Args[0])
		if err != nil {
			return nil, err
		}
		return b.internAgg(Aggregate{Func: AggCount, Arg: arg, T: types.TInt64}), nil
	case "SUM", "MIN", "MAX":
		arg, err := b.bindScalar(x.Args[0])
		if err != nil {
			return nil, err
		}
		t := arg.Type()
		if x.Name == "SUM" {
			switch t.Kind {
			case types.Int32:
				t = types.TInt64
				arg = mkCast(arg, t)
			case types.Int64, types.Float64:
			case types.Decimal:
				t = types.TDecimal(38, t.Scale)
			default:
				return nil, fmt.Errorf("sema: SUM requires a numeric argument")
			}
			return b.internAgg(Aggregate{Func: AggSum, Arg: arg, T: t}), nil
		}
		f := AggMin
		if x.Name == "MAX" {
			f = AggMax
		}
		return b.internAgg(Aggregate{Func: f, Arg: arg, T: t}), nil
	case "AVG":
		arg, err := b.bindScalar(x.Args[0])
		if err != nil {
			return nil, err
		}
		if !arg.Type().Numeric() {
			return nil, fmt.Errorf("sema: AVG requires a numeric argument")
		}
		// AVG(x) desugars to SUM(x)/COUNT(*), computed in floating point.
		sumT := arg.Type()
		sumArg := arg
		switch sumT.Kind {
		case types.Int32:
			sumT = types.TInt64
			sumArg = mkCast(arg, sumT)
		case types.Decimal:
			sumT = types.TDecimal(38, sumT.Scale)
		}
		sum := b.internAgg(Aggregate{Func: AggSum, Arg: sumArg, T: sumT})
		cnt := b.internAgg(Aggregate{Func: AggCountStar, T: types.TInt64})
		return &Binary{
			Op: OpDiv,
			L:  mkCast(sum, types.TFloat64),
			R:  mkCast(cnt, types.TFloat64),
			T:  types.TFloat64,
		}, nil
	}
	return nil, fmt.Errorf("sema: unknown function %s", x.Name)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
