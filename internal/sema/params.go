package sema

import "wasmdb/internal/types"

// Parameterize hoists the value-carrying literals of a bound query into the
// execution-time parameter vector: comparison operands, LIKE needles, and
// the LIMIT count become Param references (loaded from the writable
// parameter region of linear memory) instead of constants baked into
// generated code. Two queries that differ only in those literals therefore
// produce identical compiled modules and share one plan-cache entry.
//
// The pass runs after Analyze and before plan.Build. It is value-preserving
// by construction: each hoisted literal keeps its bound (aligned) type, so
// the generated comparison code is byte-identical to the constant version
// except for the operand load. Plan shape is unaffected — cardinality
// estimation is value-independent and conjunct placement depends only on
// TablesUsed, which a Param never contributes to.
//
// Parameter ordinals continue after the explicit ? placeholders; the
// returned slice holds the hoisted values in ordinal order, and the caller
// appends them to the user-supplied arguments to form the full vector.
// When the query has a LIMIT it is always hoisted (last), and q.LimitSlot
// records its ordinal.
func Parameterize(q *Query) []types.Value {
	p := &paramizer{q: q}
	for i := range q.Conjuncts {
		q.Conjuncts[i] = p.rewrite(q.Conjuncts[i])
	}
	for i := range q.GroupBy {
		q.GroupBy[i] = p.rewrite(q.GroupBy[i])
	}
	for i := range q.Aggs {
		if q.Aggs[i].Arg != nil {
			q.Aggs[i].Arg = p.rewrite(q.Aggs[i].Arg)
		}
	}
	for i := range q.Select {
		q.Select[i].Expr = p.rewrite(q.Select[i].Expr)
	}
	for i := range q.OrderBy {
		q.OrderBy[i].Expr = p.rewrite(q.OrderBy[i].Expr)
	}
	// HAVING literals stay baked (and fingerprinted): the clause runs once
	// per group, not per row, so sharing modules across its literal variants
	// buys little and the baked form keeps the group output pipeline branch
	// layout identical to the serial oracle. Explicit ? placeholders inside
	// HAVING are already Param nodes and flow through layoutParams as usual.
	if q.Limit >= 0 {
		q.LimitSlot = q.TotalParams
		q.TotalParams++
		p.extracted = append(p.extracted, types.NewInt64(q.Limit))
	}
	return p.extracted
}

type paramizer struct {
	q         *Query
	extracted []types.Value
}

// param allocates the next ordinal for a hoisted constant.
func (p *paramizer) param(c *Const) *Param {
	idx := p.q.TotalParams
	p.q.TotalParams++
	p.extracted = append(p.extracted, c.V)
	return &Param{Idx: idx, T: c.V.Type}
}

// rewrite replaces eligible constants in place and returns the (possibly
// new) node. Mutation is in place so shared subtrees stay consistent.
func (p *paramizer) rewrite(e Expr) Expr {
	switch x := e.(type) {
	case *Binary:
		if x.Op.IsComparison() {
			lc, lok := x.L.(*Const)
			rc, rok := x.R.(*Const)
			// Hoist a constant compared against a non-constant; an
			// all-constant predicate stays baked (and fingerprinted).
			if lok != rok {
				if lok {
					x.L = p.param(lc)
					x.R = p.rewrite(x.R)
				} else {
					x.L = p.rewrite(x.L)
					x.R = p.param(rc)
				}
				return x
			}
		}
		x.L = p.rewrite(x.L)
		x.R = p.rewrite(x.R)
	case *Not:
		x.E = p.rewrite(x.E)
	case *Cast:
		x.E = p.rewrite(x.E)
	case *Like:
		x.E = p.rewrite(x.E)
		// The needle (or, for complex patterns, the whole pattern) moves to
		// a parameter slot; its length and the pattern class stay baked, so
		// only same-shaped patterns share a module.
		if x.PIdx < 0 {
			s := x.Needle
			if x.Kind == LikeComplex {
				s = x.Pattern
			}
			if len(s) > 0 {
				x.PIdx = p.q.TotalParams
				p.q.TotalParams++
				p.extracted = append(p.extracted, types.NewChar(s, len(s)))
			}
		}
	case *Case:
		for i := range x.Whens {
			x.Whens[i].Cond = p.rewrite(x.Whens[i].Cond)
			x.Whens[i].Then = p.rewrite(x.Whens[i].Then)
		}
		x.Else = p.rewrite(x.Else)
	case *ExtractYear:
		x.E = p.rewrite(x.E)
	}
	return e
}

// SubstituteParams folds the given argument values back into the query as
// constants, removing every Param node. It is the non-caching counterpart of
// prepared execution: baselines (volcano, vectorized) and cache-disabled
// runs evaluate the exact constant-folded query, which keeps them usable as
// differential oracles for the parameterized path. vals is indexed by
// parameter ordinal and must cover q.NumParams entries.
func SubstituteParams(q *Query, vals []types.Value) {
	s := &substituter{vals: vals}
	for i := range q.Conjuncts {
		q.Conjuncts[i] = s.rewrite(q.Conjuncts[i])
	}
	for i := range q.GroupBy {
		q.GroupBy[i] = s.rewrite(q.GroupBy[i])
	}
	for i := range q.Aggs {
		if q.Aggs[i].Arg != nil {
			q.Aggs[i].Arg = s.rewrite(q.Aggs[i].Arg)
		}
	}
	for i := range q.Select {
		q.Select[i].Expr = s.rewrite(q.Select[i].Expr)
	}
	for i := range q.Having {
		q.Having[i] = s.rewrite(q.Having[i])
	}
	for i := range q.OrderBy {
		q.OrderBy[i].Expr = s.rewrite(q.OrderBy[i].Expr)
	}
}

type substituter struct {
	vals []types.Value
}

func (s *substituter) rewrite(e Expr) Expr {
	switch x := e.(type) {
	case *Param:
		if x.Idx < len(s.vals) {
			return &Const{V: s.vals[x.Idx]}
		}
	case *Binary:
		x.L = s.rewrite(x.L)
		x.R = s.rewrite(x.R)
	case *Not:
		x.E = s.rewrite(x.E)
	case *Cast:
		x.E = s.rewrite(x.E)
	case *Like:
		x.E = s.rewrite(x.E)
	case *Case:
		for i := range x.Whens {
			x.Whens[i].Cond = s.rewrite(x.Whens[i].Cond)
			x.Whens[i].Then = s.rewrite(x.Whens[i].Then)
		}
		x.Else = s.rewrite(x.Else)
	case *ExtractYear:
		x.E = s.rewrite(x.E)
	}
	return e
}
