package tpch

import (
	"strings"
	"testing"

	"wasmdb/internal/types"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(0.001, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(0.001, 7)
	if err != nil {
		t.Fatal(err)
	}
	la, _ := a.Table("lineitem")
	lb, _ := b.Table("lineitem")
	if la.Rows() != lb.Rows() {
		t.Fatalf("row counts differ: %d vs %d", la.Rows(), lb.Rows())
	}
	for _, col := range []string{"l_orderkey", "l_shipdate", "l_extendedprice", "l_shipmode"} {
		ca, _ := la.Column(col)
		cb, _ := lb.Column(col)
		for i := 0; i < la.Rows(); i += 97 {
			if ca.ValueAt(i).String() != cb.ValueAt(i).String() {
				t.Fatalf("%s row %d differs", col, i)
			}
		}
	}
}

func TestRowCountsScale(t *testing.T) {
	cat, err := Generate(0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	expect := map[string]int{
		"region": 5, "nation": 25, "supplier": 100,
		"customer": 1500, "part": 2000, "partsupp": 8000, "orders": 15000,
	}
	for name, want := range expect {
		tbl, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Rows() != want {
			t.Errorf("%s: %d rows, want %d", name, tbl.Rows(), want)
		}
	}
	li, _ := cat.Table("lineitem")
	// 1..7 lines per order, expect roughly 4×orders.
	if li.Rows() < 15000 || li.Rows() > 7*15000 {
		t.Errorf("lineitem rows out of range: %d", li.Rows())
	}
}

func TestValueDomains(t *testing.T) {
	cat, _ := Generate(0.005, 42)
	li, _ := cat.Table("lineitem")
	disc, _ := li.Column("l_discount")
	qty, _ := li.Column("l_quantity")
	tax, _ := li.Column("l_tax")
	ship, _ := li.Column("l_shipdate")
	commit, _ := li.Column("l_commitdate")
	receipt, _ := li.Column("l_receiptdate")
	mode, _ := li.Column("l_shipmode")
	rf, _ := li.Column("l_returnflag")
	modes := map[string]bool{}
	for i := 0; i < li.Rows(); i++ {
		if d := disc.I64At(i); d < 0 || d > 10 {
			t.Fatalf("discount out of domain: %d", d)
		}
		if q := qty.I64At(i); q < 100 || q > 5000 {
			t.Fatalf("quantity out of domain: %d", q)
		}
		if x := tax.I64At(i); x < 0 || x > 8 {
			t.Fatalf("tax out of domain: %d", x)
		}
		if receipt.I32At(i) <= ship.I32At(i) {
			t.Fatalf("receiptdate not after shipdate at %d", i)
		}
		_ = commit
		modes[mode.CharAt(i)] = true
		switch rf.CharAt(i) {
		case "R", "A", "N":
		default:
			t.Fatalf("bad returnflag %q", rf.CharAt(i))
		}
	}
	if len(modes) != len(shipModes) {
		t.Errorf("ship modes seen: %d, want %d", len(modes), len(shipModes))
	}
	// PROMO parts should be about 1/6 of p_type.
	part, _ := cat.Table("part")
	pt, _ := part.Column("p_type")
	promo := 0
	for i := 0; i < part.Rows(); i++ {
		if strings.HasPrefix(pt.CharAt(i), "PROMO") {
			promo++
		}
	}
	frac := float64(promo) / float64(part.Rows())
	if frac < 0.08 || frac > 0.28 {
		t.Errorf("PROMO fraction %.3f outside plausible range", frac)
	}
}

func TestQuerySelectivities(t *testing.T) {
	// Q6's predicate should select a few percent of lineitem; Q1's nearly
	// everything. These bounds guard the generator's distributions.
	cat, _ := Generate(0.01, 42)
	li, _ := cat.Table("lineitem")
	ship, _ := li.Column("l_shipdate")
	disc, _ := li.Column("l_discount")
	qty, _ := li.Column("l_quantity")
	lo, _ := types.ParseDate("1994-01-01")
	hi, _ := types.ParseDate("1995-01-01")
	cut, _ := types.ParseDate("1998-09-02")
	q6, q1 := 0, 0
	for i := 0; i < li.Rows(); i++ {
		if ship.I32At(i) >= lo && ship.I32At(i) < hi &&
			disc.I64At(i) >= 5 && disc.I64At(i) <= 7 && qty.I64At(i) < 2400 {
			q6++
		}
		if ship.I32At(i) <= cut {
			q1++
		}
	}
	q6frac := float64(q6) / float64(li.Rows())
	q1frac := float64(q1) / float64(li.Rows())
	if q6frac < 0.005 || q6frac > 0.06 {
		t.Errorf("Q6 selectivity %.4f outside plausible range", q6frac)
	}
	if q1frac < 0.95 {
		t.Errorf("Q1 selectivity %.4f too low", q1frac)
	}
}

func TestQueriesParseable(t *testing.T) {
	for id, src := range Queries {
		if !strings.Contains(src, "SELECT") {
			t.Errorf("%s: no SELECT", id)
		}
	}
	if len(QueryIDs) != 5 {
		t.Errorf("expected 5 queries, got %d", len(QueryIDs))
	}
}
