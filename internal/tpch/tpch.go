// Package tpch provides a deterministic, scaled TPC-H data generator and
// the benchmark queries the paper's Figure 10 evaluates (Q1, Q3, Q6, Q12,
// Q14). The generator reproduces the official schema and the value
// distributions those queries are sensitive to — date ranges, discount and
// quantity domains, ship modes, order priorities, market segments, part
// type vocabulary — without the official dbgen's text corpus (comment
// columns carry synthetic filler).
package tpch

import (
	"fmt"
	"math/rand"

	"wasmdb/internal/catalog"
	"wasmdb/internal/storage"
	"wasmdb/internal/types"
)

// Scale factors: row counts per TPC-H specification.
const (
	regionRows   = 5
	nationRows   = 25
	supplierBase = 10_000
	customerBase = 150_000
	partBase     = 200_000
	partsuppPerP = 4
	ordersBase   = 1_500_000
	maxLinesPerO = 7
)

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var shipInstruct = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
var typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
var containers1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
var containers2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

// Dates (day numbers).
var (
	startDate, _   = types.ParseDate("1992-01-01")
	endDate, _     = types.ParseDate("1998-08-02")
	currentDate, _ = types.ParseDate("1995-06-17")
)

// Generate builds all eight TPC-H tables at the given scale factor into a
// fresh catalog. Generation is deterministic for a given (sf, seed).
func Generate(sf float64, seed int64) (*catalog.Catalog, error) {
	cat := catalog.New()
	rng := rand.New(rand.NewSource(seed))

	scale := func(base int) int {
		n := int(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	nSupplier := scale(supplierBase)
	nCustomer := scale(customerBase)
	nPart := scale(partBase)
	nOrders := scale(ordersBase)

	// region
	region, err := cat.Create("region", []catalog.ColumnDef{
		{Name: "r_regionkey", Type: types.TInt32},
		{Name: "r_name", Type: types.TChar(25)},
		{Name: "r_comment", Type: types.TChar(40)},
	})
	if err != nil {
		return nil, err
	}
	for i, name := range regions {
		region.AppendRow(types.NewInt32(int32(i)), types.NewChar(name, 25), types.NewChar("filler", 40))
	}

	// nation
	nation, err := cat.Create("nation", []catalog.ColumnDef{
		{Name: "n_nationkey", Type: types.TInt32},
		{Name: "n_name", Type: types.TChar(25)},
		{Name: "n_regionkey", Type: types.TInt32},
		{Name: "n_comment", Type: types.TChar(40)},
	})
	if err != nil {
		return nil, err
	}
	for i, n := range nations {
		nation.AppendRow(types.NewInt32(int32(i)), types.NewChar(n.name, 25),
			types.NewInt32(int32(n.region)), types.NewChar("filler", 40))
	}

	// supplier
	supplier, err := cat.Create("supplier", []catalog.ColumnDef{
		{Name: "s_suppkey", Type: types.TInt32},
		{Name: "s_name", Type: types.TChar(25)},
		{Name: "s_nationkey", Type: types.TInt32},
		{Name: "s_acctbal", Type: types.TDecimal(12, 2)},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < nSupplier; i++ {
		supplier.AppendRow(
			types.NewInt32(int32(i+1)),
			types.NewChar(fmt.Sprintf("Supplier#%09d", i+1), 25),
			types.NewInt32(int32(rng.Intn(nationRows))),
			types.NewDecimal(int64(rng.Intn(1100000)-10000), 12, 2),
		)
	}

	// part
	part, err := cat.Create("part", []catalog.ColumnDef{
		{Name: "p_partkey", Type: types.TInt32},
		{Name: "p_name", Type: types.TChar(55)},
		{Name: "p_mfgr", Type: types.TChar(25)},
		{Name: "p_brand", Type: types.TChar(10)},
		{Name: "p_type", Type: types.TChar(25)},
		{Name: "p_size", Type: types.TInt32},
		{Name: "p_container", Type: types.TChar(10)},
		{Name: "p_retailprice", Type: types.TDecimal(12, 2)},
	})
	if err != nil {
		return nil, err
	}
	retail := make([]int64, nPart)
	for i := 0; i < nPart; i++ {
		mfgr := rng.Intn(5) + 1
		brand := mfgr*10 + rng.Intn(5) + 1
		pt := typeSyl1[rng.Intn(len(typeSyl1))] + " " +
			typeSyl2[rng.Intn(len(typeSyl2))] + " " +
			typeSyl3[rng.Intn(len(typeSyl3))]
		// Official retail price formula.
		pk := int64(i + 1)
		retail[i] = 90000 + (pk/10)%20001 + 100*(pk%1000)
		part.AppendRow(
			types.NewInt32(int32(i+1)),
			types.NewChar(fmt.Sprintf("part name %d", i+1), 55),
			types.NewChar(fmt.Sprintf("Manufacturer#%d", mfgr), 25),
			types.NewChar(fmt.Sprintf("Brand#%d", brand), 10),
			types.NewChar(pt, 25),
			types.NewInt32(int32(rng.Intn(50)+1)),
			types.NewChar(containers1[rng.Intn(len(containers1))]+" "+containers2[rng.Intn(len(containers2))], 10),
			types.NewDecimal(retail[i], 12, 2),
		)
	}

	// partsupp
	partsupp, err := cat.Create("partsupp", []catalog.ColumnDef{
		{Name: "ps_partkey", Type: types.TInt32},
		{Name: "ps_suppkey", Type: types.TInt32},
		{Name: "ps_availqty", Type: types.TInt32},
		{Name: "ps_supplycost", Type: types.TDecimal(12, 2)},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < nPart; i++ {
		for j := 0; j < partsuppPerP; j++ {
			partsupp.AppendRow(
				types.NewInt32(int32(i+1)),
				types.NewInt32(int32((i+j*(nSupplier/partsuppPerP+1))%nSupplier+1)),
				types.NewInt32(int32(rng.Intn(9999)+1)),
				types.NewDecimal(int64(rng.Intn(100000)+100), 12, 2),
			)
		}
	}

	// customer
	customer, err := cat.Create("customer", []catalog.ColumnDef{
		{Name: "c_custkey", Type: types.TInt32},
		{Name: "c_name", Type: types.TChar(25)},
		{Name: "c_nationkey", Type: types.TInt32},
		{Name: "c_acctbal", Type: types.TDecimal(12, 2)},
		{Name: "c_mktsegment", Type: types.TChar(10)},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < nCustomer; i++ {
		customer.AppendRow(
			types.NewInt32(int32(i+1)),
			types.NewChar(fmt.Sprintf("Customer#%09d", i+1), 25),
			types.NewInt32(int32(rng.Intn(nationRows))),
			types.NewDecimal(int64(rng.Intn(1100000)-10000), 12, 2),
			types.NewChar(segments[rng.Intn(len(segments))], 10),
		)
	}

	// orders + lineitem
	orders, err := cat.Create("orders", []catalog.ColumnDef{
		{Name: "o_orderkey", Type: types.TInt32},
		{Name: "o_custkey", Type: types.TInt32},
		{Name: "o_orderstatus", Type: types.TChar(1)},
		{Name: "o_totalprice", Type: types.TDecimal(12, 2)},
		{Name: "o_orderdate", Type: types.TDate},
		{Name: "o_orderpriority", Type: types.TChar(15)},
		{Name: "o_shippriority", Type: types.TInt32},
	})
	if err != nil {
		return nil, err
	}
	lineitem, err := cat.Create("lineitem", []catalog.ColumnDef{
		{Name: "l_orderkey", Type: types.TInt32},
		{Name: "l_partkey", Type: types.TInt32},
		{Name: "l_suppkey", Type: types.TInt32},
		{Name: "l_linenumber", Type: types.TInt32},
		{Name: "l_quantity", Type: types.TDecimal(12, 2)},
		{Name: "l_extendedprice", Type: types.TDecimal(12, 2)},
		{Name: "l_discount", Type: types.TDecimal(12, 2)},
		{Name: "l_tax", Type: types.TDecimal(12, 2)},
		{Name: "l_returnflag", Type: types.TChar(1)},
		{Name: "l_linestatus", Type: types.TChar(1)},
		{Name: "l_shipdate", Type: types.TDate},
		{Name: "l_commitdate", Type: types.TDate},
		{Name: "l_receiptdate", Type: types.TDate},
		{Name: "l_shipinstruct", Type: types.TChar(25)},
		{Name: "l_shipmode", Type: types.TChar(10)},
	})
	if err != nil {
		return nil, err
	}

	dateRange := int(endDate - startDate)
	for o := 0; o < nOrders; o++ {
		orderDate := startDate + int32(rng.Intn(dateRange-121))
		nLines := rng.Intn(maxLinesPerO) + 1
		var total int64
		lines := make([][]types.Value, 0, nLines)
		for li := 0; li < nLines; li++ {
			pk := rng.Intn(nPart)
			qty := int64(rng.Intn(50) + 1)
			// extendedprice = qty * retail price of the part
			ext := qty * retail[pk]
			disc := int64(rng.Intn(11)) // 0.00 .. 0.10
			tax := int64(rng.Intn(9))   // 0.00 .. 0.08
			ship := orderDate + int32(rng.Intn(121)+1)
			commit := orderDate + int32(rng.Intn(61)+30)
			receipt := ship + int32(rng.Intn(30)+1)
			rf := "N"
			if receipt <= currentDate {
				if rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			}
			ls := "O"
			if ship <= currentDate {
				ls = "F"
			}
			total += ext
			lines = append(lines, []types.Value{
				types.NewInt32(int32(o + 1)),
				types.NewInt32(int32(pk + 1)),
				types.NewInt32(int32(rng.Intn(nSupplier) + 1)),
				types.NewInt32(int32(li + 1)),
				types.NewDecimal(qty*100, 12, 2),
				types.NewDecimal(ext, 12, 2),
				types.NewDecimal(disc, 12, 2),
				types.NewDecimal(tax, 12, 2),
				types.NewChar(rf, 1),
				types.NewChar(ls, 1),
				types.NewDate(ship),
				types.NewDate(commit),
				types.NewDate(receipt),
				types.NewChar(shipInstruct[rng.Intn(len(shipInstruct))], 25),
				types.NewChar(shipModes[rng.Intn(len(shipModes))], 10),
			})
		}
		status := "O"
		switch {
		case lines[0][9].S == "F" && nLines > 0 && allF(lines):
			status = "F"
		case someF(lines):
			status = "P"
		}
		orders.AppendRow(
			types.NewInt32(int32(o+1)),
			types.NewInt32(int32(rng.Intn(nCustomer)+1)),
			types.NewChar(status, 1),
			types.NewDecimal(total, 12, 2),
			types.NewDate(orderDate),
			types.NewChar(priorities[rng.Intn(len(priorities))], 15),
			types.NewInt32(0),
		)
		for _, ln := range lines {
			lineitem.AppendRow(ln...)
		}
	}
	return cat, nil
}

func allF(lines [][]types.Value) bool {
	for _, ln := range lines {
		if ln[9].S != "F" {
			return false
		}
	}
	return true
}

func someF(lines [][]types.Value) bool {
	for _, ln := range lines {
		if ln[9].S == "F" {
			return true
		}
	}
	return false
}

// Tables returns the generated tables from a catalog (for size reporting).
func Tables(cat *catalog.Catalog) []*storage.Table {
	var out []*storage.Table
	for _, n := range cat.Names() {
		t, _ := cat.Table(n)
		out = append(out, t)
	}
	return out
}

// Queries maps query ids to the SQL text of the reproduced TPC-H queries.
// Q3 omits the positional-alias trick of the official text (revenue is an
// explicit alias) but is otherwise the standard formulation.
var Queries = map[string]string{
	"Q1": `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`,

	"Q3": `
SELECT l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10`,

	"Q6": `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24`,

	"Q12": `
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY l_shipmode
ORDER BY l_shipmode`,

	"Q14": `
SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END) /
       SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH`,
}

// QueryIDs lists the reproduced queries in evaluation order.
var QueryIDs = []string{"Q1", "Q3", "Q6", "Q12", "Q14"}
