package plan

import (
	"math"
	"strings"
	"testing"

	"wasmdb/internal/catalog"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/types"
)

func testCatalog(t *testing.T, rRows, sRows int) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	r, err := cat.Create("r", []catalog.ColumnDef{
		{Name: "id", Type: types.TInt32},
		{Name: "x", Type: types.TInt32},
		{Name: "y", Type: types.TFloat64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rRows; i++ {
		r.AppendRow(types.NewInt32(int32(i)), types.NewInt32(int32(i%10)), types.NewFloat64(float64(i)))
	}
	s, err := cat.Create("s", []catalog.ColumnDef{
		{Name: "rid", Type: types.TInt32},
		{Name: "v", Type: types.TInt64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sRows; i++ {
		s.AppendRow(types.NewInt32(int32(i%rRows)), types.NewInt64(int64(i)))
	}
	u, err := cat.Create("u", []catalog.ColumnDef{
		{Name: "sid", Type: types.TInt32},
		{Name: "w", Type: types.TInt64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		u.AppendRow(types.NewInt32(int32(i)), types.NewInt64(int64(i)))
	}
	return cat
}

func buildPlan(t *testing.T, cat *catalog.Catalog, src string) Node {
	t.Helper()
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPushdownIntoScan(t *testing.T) {
	cat := testCatalog(t, 100, 1000)
	p := buildPlan(t, cat, "SELECT x FROM r WHERE x < 5 AND y > 0.5")
	proj := p.(*Project)
	scan := proj.Input.(*Scan)
	if len(scan.Filter) != 2 {
		t.Errorf("filters not pushed: %v", scan.Filter)
	}
}

func TestJoinBuildsOnSmallerSide(t *testing.T) {
	cat := testCatalog(t, 100, 1000)
	p := buildPlan(t, cat, "SELECT r.x FROM r, s WHERE r.id = s.rid")
	proj := p.(*Project)
	j := proj.Input.(*HashJoin)
	bs := j.Build.(*Scan)
	ps := j.Probe.(*Scan)
	if bs.Table.Name != "r" || ps.Table.Name != "s" {
		t.Errorf("build=%s probe=%s; want build=r probe=s", bs.Table.Name, ps.Table.Name)
	}
	if len(j.BuildKeys) != 1 || len(j.ProbeKeys) != 1 {
		t.Fatalf("keys: %v / %v", j.BuildKeys, j.ProbeKeys)
	}
	// Build key must reference r (#0), probe key s (#1).
	bt := map[int]bool{}
	sema.TablesUsed(j.BuildKeys[0], bt)
	if !bt[0] || len(bt) != 1 {
		t.Errorf("build key tables: %v", bt)
	}
}

func TestThreeWayJoinOrder(t *testing.T) {
	cat := testCatalog(t, 100, 1000)
	p := buildPlan(t, cat, `SELECT r.x FROM r, s, u WHERE r.id = s.rid AND s.v = u.sid`)
	// u is tiny (5 rows): it should be the seed, joined with s, then r.
	proj := p.(*Project)
	top, ok := proj.Input.(*HashJoin)
	if !ok {
		t.Fatalf("top: %T", proj.Input)
	}
	inner, ok := top.Probe.(*HashJoin)
	if !ok {
		// Or build side, depending on sizes.
		inner, ok = top.Build.(*HashJoin)
	}
	if !ok {
		t.Fatalf("no nested join: %s", Describe(p))
	}
	_ = inner
	// All three tables must be available at the top.
	if len(top.Tables()) != 2 && len(proj.Input.Tables()) != 3 {
		t.Errorf("tables at top: %v", proj.Input.Tables())
	}
}

func TestResidualPredicate(t *testing.T) {
	cat := testCatalog(t, 100, 1000)
	p := buildPlan(t, cat, "SELECT r.x FROM r, s WHERE r.id = s.rid AND r.x < s.v")
	j := p.(*Project).Input.(*HashJoin)
	if len(j.Residual) != 1 {
		t.Errorf("residual: %v", j.Residual)
	}
}

func TestCrossProductRejected(t *testing.T) {
	cat := testCatalog(t, 100, 1000)
	stmt, _ := sql.ParseSelect("SELECT r.x FROM r, s")
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(q); err == nil {
		t.Error("cross product accepted")
	}
	stmt, _ = sql.ParseSelect("SELECT r.x FROM r, s WHERE r.id < s.rid")
	q, _ = sema.Analyze(stmt, cat)
	if _, err := Build(q); err == nil {
		t.Error("non-equi-only join accepted")
	}
}

func TestTowerShape(t *testing.T) {
	cat := testCatalog(t, 100, 1000)
	p := buildPlan(t, cat, "SELECT x, COUNT(*) AS n FROM r GROUP BY x ORDER BY n DESC LIMIT 3")
	proj := p.(*Project)
	lim := proj.Input.(*Limit)
	srt := lim.Input.(*Sort)
	grp := srt.Input.(*Group)
	if _, ok := grp.Input.(*Scan); !ok {
		t.Errorf("base: %T", grp.Input)
	}
	if lim.N != 3 || len(srt.Keys) != 1 || !srt.Keys[0].Desc {
		t.Errorf("tower: limit=%d sort=%v", lim.N, srt.Keys)
	}
}

func TestDescribeAndPipelines(t *testing.T) {
	cat := testCatalog(t, 100, 1000)
	p := buildPlan(t, cat, `SELECT r.x, MIN(s.v) FROM r, s WHERE r.x < 42 AND r.id = s.rid GROUP BY r.x`)
	desc := Describe(p)
	for _, want := range []string{"HashJoin", "GroupBy", "Scan r", "Scan s", "filter"} {
		if !strings.Contains(desc, want) {
			t.Errorf("describe missing %q:\n%s", want, desc)
		}
	}
	pipes := Pipelines(p)
	// The paper's Figure 3 example: three pipelines.
	if len(pipes) != 3 {
		t.Fatalf("pipelines: %d\n%v", len(pipes), pipes)
	}
	if !strings.Contains(pipes[0].String(), "scan r") || !strings.Contains(pipes[0].Sink, "join hash table") {
		t.Errorf("pipeline 1: %s", pipes[0])
	}
	if !strings.Contains(pipes[1].String(), "scan s") {
		t.Errorf("pipeline 2: %s", pipes[1])
	}
	if !strings.Contains(pipes[2].Source, "groups") {
		t.Errorf("pipeline 3: %s", pipes[2])
	}
}

func TestGlobalAggregateSingleGroup(t *testing.T) {
	cat := testCatalog(t, 100, 1000)
	p := buildPlan(t, cat, "SELECT COUNT(*) FROM r")
	g := p.(*Project).Input.(*Group)
	if len(g.Keys) != 0 || g.Rows() != 1 {
		t.Errorf("global group: keys=%d rows=%v", len(g.Keys), g.Rows())
	}
}

// Degenerate cardinality estimates — zero, negative, NaN, or overflowing —
// must not escape the planner: every Rows() is clamped to a finite value in
// [1, 1e18] at the planner boundary. core's joinInitialCap keeps its own
// clamp as a defense-in-depth backstop (pinned in core's tests), but the
// invariant is owed here.
func TestRowsEstimatesSanitized(t *testing.T) {
	nan := math.NaN()
	leaf := &Scan{est: 100}
	nodes := map[string]Node{
		"scan-nan":       &Scan{est: nan},
		"scan-zero":      &Scan{est: 0},
		"scan-negative":  &Scan{est: -17},
		"scan-inf":       &Scan{est: math.Inf(1)},
		"join-nan":       &HashJoin{Build: leaf, Probe: leaf, est: nan},
		"join-negative":  &HashJoin{Build: leaf, Probe: leaf, est: -1},
		"group-zero":     &Group{Input: leaf, est: 0},
		"sort-over-nan":  &Sort{Input: &Scan{est: nan}},
		"limit-zero":     &Limit{Input: leaf, N: 0},
		"project-od-nan": &Project{Input: &Scan{est: nan}},
	}
	for name, n := range nodes {
		r := n.Rows()
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 1 || r > maxRowsEst {
			t.Errorf("%s: Rows() = %v, want finite in [1, %g]", name, r, maxRowsEst)
		}
	}
}

// An empty table with a long conjunct chain drives the multiplicative
// selectivity estimate toward zero through every operator of the tower; all
// of them must still report >= 1.
func TestBuiltPlanEstimatesFinite(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.Create("e", []catalog.ColumnDef{
		{Name: "a", Type: types.TInt32},
		{Name: "b", Type: types.TInt32},
	}); err != nil {
		t.Fatal(err)
	}
	p := buildPlan(t, cat,
		"SELECT a, COUNT(*) AS n FROM e WHERE a < 1 AND b < 2 AND a < 3 AND b < 4 AND a < 5 "+
			"GROUP BY a ORDER BY n LIMIT 10")
	var walk func(n Node)
	walk = func(n Node) {
		r := n.Rows()
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 1 {
			t.Errorf("%T: Rows() = %v, want finite >= 1", n, r)
		}
		switch x := n.(type) {
		case *HashJoin:
			walk(x.Build)
			walk(x.Probe)
		case *Group:
			walk(x.Input)
		case *Sort:
			walk(x.Input)
		case *Limit:
			walk(x.Input)
		case *Project:
			walk(x.Input)
		}
	}
	walk(p)
}
