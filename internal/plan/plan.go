// Package plan builds physical query execution plans (QEPs) from bound
// queries: selection pushdown into scans, extraction of equi-join
// predicates, greedy join ordering by estimated cardinality, and the
// aggregation/sort/limit/projection tower on top. The same QEP is consumed
// by the WebAssembly compiler (internal/core) and by all baseline engines,
// so measured differences are execution-architecture differences, not plan
// differences — the setup the paper's §8 relies on.
package plan

import (
	"fmt"
	"math"
	"strings"

	"wasmdb/internal/sema"
	"wasmdb/internal/storage"
)

// maxRowsEst caps cardinality estimates so downstream float arithmetic
// (cost models multiplying estimates, log terms) stays finite.
const maxRowsEst = 1e18

// sanitizeRows clamps a cardinality estimate to a finite value in
// [1, maxRowsEst]. Degenerate statistics — empty tables, long conjunct
// chains multiplying selectivity toward zero, NaN or Inf propagated through
// estimate arithmetic — must not escape the planner: every consumer of
// Rows() (the autopilot cost model, hash-table pre-sizing, plan-fingerprint
// quantization) assumes finite, ≥1 estimates. core's joinInitialCap keeps
// its own clamp as a backstop, but the planner boundary is where the
// invariant is owed.
func sanitizeRows(est float64) float64 {
	if math.IsNaN(est) || est < 1 {
		return 1
	}
	if est > maxRowsEst {
		return maxRowsEst
	}
	return est
}

// Node is a physical plan operator.
type Node interface {
	// Rows estimates output cardinality.
	Rows() float64
	// Tables returns the set of query table indices available in this
	// node's output tuples.
	Tables() map[int]bool
	describe(sb *strings.Builder, indent int)
}

// Scan reads one table with pushed-down filters.
type Scan struct {
	TableIdx int
	Table    *storage.Table
	// Filter holds conjuncts referencing only this table, evaluated in
	// order.
	Filter []sema.Expr
	est    float64
}

// Rows implements Node.
func (s *Scan) Rows() float64 { return sanitizeRows(s.est) }

// Tables implements Node.
func (s *Scan) Tables() map[int]bool { return map[int]bool{s.TableIdx: true} }

func (s *Scan) describe(sb *strings.Builder, indent int) {
	pad(sb, indent)
	fmt.Fprintf(sb, "Scan %s (#%d, %d rows)", s.Table.Name, s.TableIdx, s.Table.Rows())
	if len(s.Filter) > 0 {
		sb.WriteString(" filter:")
		for _, f := range s.Filter {
			sb.WriteString(" " + f.String())
		}
	}
	sb.WriteString("\n")
}

// HashJoin is an inner equi-join; the build side is materialized into an
// ad-hoc generated hash table, the probe side streams (§4.3).
type HashJoin struct {
	Build, Probe         Node
	BuildKeys, ProbeKeys []sema.Expr
	// Residual holds non-equi conjuncts spanning both sides, applied to
	// joined tuples.
	Residual []sema.Expr
	est      float64
}

// Rows implements Node.
func (j *HashJoin) Rows() float64 { return sanitizeRows(j.est) }

// Tables implements Node.
func (j *HashJoin) Tables() map[int]bool {
	out := map[int]bool{}
	for t := range j.Build.Tables() {
		out[t] = true
	}
	for t := range j.Probe.Tables() {
		out[t] = true
	}
	return out
}

func (j *HashJoin) describe(sb *strings.Builder, indent int) {
	pad(sb, indent)
	sb.WriteString("HashJoin on")
	for i := range j.BuildKeys {
		fmt.Fprintf(sb, " %s=%s", j.BuildKeys[i], j.ProbeKeys[i])
	}
	for _, r := range j.Residual {
		sb.WriteString(" residual:" + r.String())
	}
	sb.WriteString("\n")
	pad(sb, indent+1)
	sb.WriteString("build:\n")
	j.Build.describe(sb, indent+2)
	pad(sb, indent+1)
	sb.WriteString("probe:\n")
	j.Probe.describe(sb, indent+2)
}

// Group aggregates its input by the key expressions (empty keys = one
// global group).
type Group struct {
	Input Node
	Keys  []sema.Expr
	Aggs  []sema.Aggregate
	// Having holds post-aggregation filter conjuncts (post-agg domain),
	// applied to each group before it is emitted.
	Having []sema.Expr
	est    float64
}

// Rows implements Node.
func (g *Group) Rows() float64 { return sanitizeRows(g.est) }

// Tables implements Node.
func (g *Group) Tables() map[int]bool { return map[int]bool{} }

func (g *Group) describe(sb *strings.Builder, indent int) {
	pad(sb, indent)
	sb.WriteString("GroupBy")
	for _, k := range g.Keys {
		sb.WriteString(" " + k.String())
	}
	sb.WriteString(" aggs:")
	for _, a := range g.Aggs {
		sb.WriteString(" " + a.String())
	}
	for _, h := range g.Having {
		sb.WriteString(" having:" + h.String())
	}
	sb.WriteString("\n")
	g.Input.describe(sb, indent+1)
}

// Sort orders its input (a full sort via ad-hoc generated quicksort, §5).
type Sort struct {
	Input Node
	Keys  []sema.OrderKey
}

// Rows implements Node.
func (s *Sort) Rows() float64 { return sanitizeRows(s.Input.Rows()) }

// Tables implements Node.
func (s *Sort) Tables() map[int]bool { return s.Input.Tables() }

func (s *Sort) describe(sb *strings.Builder, indent int) {
	pad(sb, indent)
	sb.WriteString("Sort")
	for _, k := range s.Keys {
		dir := " asc"
		if k.Desc {
			dir = " desc"
		}
		sb.WriteString(" " + k.Expr.String() + dir)
	}
	sb.WriteString("\n")
	s.Input.describe(sb, indent+1)
}

// Limit caps the number of output rows.
type Limit struct {
	Input Node
	N     int64
}

// Rows implements Node.
func (l *Limit) Rows() float64 {
	r := l.Input.Rows()
	if float64(l.N) < r {
		r = float64(l.N)
	}
	return sanitizeRows(r)
}

// Tables implements Node.
func (l *Limit) Tables() map[int]bool { return l.Input.Tables() }

func (l *Limit) describe(sb *strings.Builder, indent int) {
	pad(sb, indent)
	fmt.Fprintf(sb, "Limit %d\n", l.N)
	l.Input.describe(sb, indent+1)
}

// Project computes the final output columns.
type Project struct {
	Input Node
	Cols  []sema.OutputCol
}

// Rows implements Node.
func (p *Project) Rows() float64 { return sanitizeRows(p.Input.Rows()) }

// Tables implements Node.
func (p *Project) Tables() map[int]bool { return p.Input.Tables() }

func (p *Project) describe(sb *strings.Builder, indent int) {
	pad(sb, indent)
	sb.WriteString("Project")
	for _, c := range p.Cols {
		sb.WriteString(" " + c.Name)
	}
	sb.WriteString("\n")
	p.Input.describe(sb, indent+1)
}

func pad(sb *strings.Builder, n int) { sb.WriteString(strings.Repeat("  ", n)) }

// Describe renders the plan tree as text (used by EXPLAIN).
func Describe(n Node) string {
	var sb strings.Builder
	n.describe(&sb, 0)
	return sb.String()
}
