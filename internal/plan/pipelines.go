package plan

import "fmt"

// Pipeline describes one pipeline of the QEP: a linear sequence of operators
// between materialization points (§4.1). Pipelines are listed in topological
// order — the order in which they must execute.
type Pipeline struct {
	// Source names what the pipeline iterates over (a table scan or a
	// materialized structure produced by an earlier pipeline).
	Source string
	// Ops names the operators the tuples flow through.
	Ops []string
	// Sink names the materialization terminating the pipeline.
	Sink string
}

func (p Pipeline) String() string {
	s := p.Source
	for _, op := range p.Ops {
		s += " → " + op
	}
	return s + " ⇒ " + p.Sink
}

// Pipelines dissects the plan into its pipelines in topological order.
func Pipelines(root Node) []Pipeline {
	d := &dissector{}
	d.walk(root, nil, "result")
	return d.out
}

type dissector struct {
	out []Pipeline
}

// walk processes node n; downstream collects the operator labels applied to
// this node's tuples on their way to the pipeline's sink.
func (d *dissector) walk(n Node, downstream []string, sink string) {
	switch x := n.(type) {
	case *Project:
		d.walk(x.Input, append([]string{"project"}, downstream...), sink)
	case *Limit:
		d.walk(x.Input, append([]string{fmt.Sprintf("limit %d", x.N)}, downstream...), sink)
	case *Sort:
		d.walk(x.Input, nil, "sort array")
		d.out = append(d.out, Pipeline{
			Source: "sorted array (generated quicksort)",
			Ops:    downstream,
			Sink:   sink,
		})
	case *Group:
		d.walk(x.Input, []string{"aggregate"}, "group hash table (generated)")
		d.out = append(d.out, Pipeline{
			Source: "scan groups",
			Ops:    downstream,
			Sink:   sink,
		})
	case *HashJoin:
		d.walk(x.Build, nil, "join hash table (generated)")
		d.walk(x.Probe, append([]string{"probe join hash table"}, downstream...), sink)
	case *Scan:
		var ops []string
		if len(x.Filter) > 0 {
			ops = append(ops, "select")
		}
		ops = append(ops, downstream...)
		d.out = append(d.out, Pipeline{Source: "scan " + x.Table.Name, Ops: ops, Sink: sink})
	}
}
