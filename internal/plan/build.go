package plan

import (
	"fmt"

	"wasmdb/internal/sema"
)

// Build turns a bound query into a physical plan.
func Build(q *sema.Query) (Node, error) {
	b := &builder{q: q}
	root, err := b.joinTree()
	if err != nil {
		return nil, err
	}
	if q.Grouped {
		est := root.Rows() / 10
		if len(q.GroupBy) == 0 {
			est = 1
		}
		root = &Group{Input: root, Keys: q.GroupBy, Aggs: q.Aggs, Having: q.Having, est: sanitizeRows(est)}
	}
	if len(q.OrderBy) > 0 {
		root = &Sort{Input: root, Keys: q.OrderBy}
	}
	if q.Limit >= 0 {
		root = &Limit{Input: root, N: q.Limit}
	}
	return &Project{Input: root, Cols: q.Select}, nil
}

type builder struct {
	q *sema.Query
}

// conjunct bookkeeping during join-tree construction.
type pendingConjunct struct {
	expr   sema.Expr
	tables map[int]bool
}

func (b *builder) joinTree() (Node, error) {
	n := len(b.q.Tables)

	// Distribute conjuncts: single-table ones push into scans, the rest are
	// kept pending and placed at the first join covering their tables.
	scanFilters := make([][]sema.Expr, n)
	var pending []pendingConjunct
	for _, c := range b.q.Conjuncts {
		ts := map[int]bool{}
		sema.TablesUsed(c, ts)
		if len(ts) == 1 {
			for t := range ts {
				scanFilters[t] = append(scanFilters[t], c)
			}
		} else if len(ts) == 0 {
			// Constant predicate: attach to table 0's scan.
			scanFilters[0] = append(scanFilters[0], c)
		} else {
			pending = append(pending, pendingConjunct{expr: c, tables: ts})
		}
	}

	nodes := make([]Node, n)
	for i, tr := range b.q.Tables {
		est := float64(tr.Table.Rows())
		for range scanFilters[i] {
			est *= 0.5 // crude selectivity guess per conjunct
		}
		nodes[i] = &Scan{TableIdx: i, Table: tr.Table, Filter: scanFilters[i], est: sanitizeRows(est)}
	}
	if n == 1 {
		return nodes[0], nil
	}

	// Greedy join ordering: start from the smallest scan, repeatedly join
	// the smallest table connected through an equi predicate.
	remaining := map[int]Node{}
	for i, nd := range nodes {
		remaining[i] = nd
	}
	// Pick the smallest estimated scan as the seed.
	seed := -1
	for i := range remaining {
		if seed < 0 || nodes[i].Rows() < nodes[seed].Rows() {
			seed = i
		}
	}
	cur := remaining[seed]
	delete(remaining, seed)

	for len(remaining) > 0 {
		curTables := cur.Tables()
		// Find candidate joins: equi conjuncts with one side fully in cur
		// and the other fully in a single remaining subtree.
		type cand struct {
			other              int
			buildKey, probeKey sema.Expr
		}
		var candidates []cand
		for _, pc := range pending {
			eq, ok := pc.expr.(*sema.Binary)
			if !ok || eq.Op != sema.OpEq {
				continue
			}
			lt, rt := map[int]bool{}, map[int]bool{}
			sema.TablesUsed(eq.L, lt)
			sema.TablesUsed(eq.R, rt)
			if len(lt) == 0 || len(rt) == 0 {
				continue
			}
			lIn, rIn := subset(lt, curTables), subset(rt, curTables)
			switch {
			case lIn && !rIn:
				if o := singleOwner(rt, remaining); o >= 0 {
					candidates = append(candidates, cand{other: o, buildKey: eq.L, probeKey: eq.R})
				}
			case rIn && !lIn:
				if o := singleOwner(lt, remaining); o >= 0 {
					candidates = append(candidates, cand{other: o, buildKey: eq.R, probeKey: eq.L})
				}
			}
		}
		if len(candidates) == 0 {
			return nil, fmt.Errorf("plan: query requires a cross product or a non-equi join between table groups; only equi joins are supported")
		}
		// Choose the candidate whose other side is smallest.
		best := candidates[0]
		for _, c := range candidates[1:] {
			if remaining[c.other].Rows() < remaining[best.other].Rows() {
				best = c
			}
		}
		other := remaining[best.other]
		delete(remaining, best.other)

		// Gather every pending conjunct now fully covered.
		joined := map[int]bool{}
		for t := range curTables {
			joined[t] = true
		}
		for t := range other.Tables() {
			joined[t] = true
		}
		var buildKeys, probeKeys []sema.Expr
		var residual []sema.Expr
		var still []pendingConjunct
		for _, pc := range pending {
			if !subset(pc.tables, joined) {
				still = append(still, pc)
				continue
			}
			if eq, ok := pc.expr.(*sema.Binary); ok && eq.Op == sema.OpEq {
				lt, rt := map[int]bool{}, map[int]bool{}
				sema.TablesUsed(eq.L, lt)
				sema.TablesUsed(eq.R, rt)
				// Key pair if each side belongs entirely to one input.
				switch {
				case len(lt) > 0 && len(rt) > 0 && subset(lt, curTables) && subset(rt, other.Tables()):
					probeKeys = append(probeKeys, eq.L)
					buildKeys = append(buildKeys, eq.R)
					continue
				case len(lt) > 0 && len(rt) > 0 && subset(rt, curTables) && subset(lt, other.Tables()):
					probeKeys = append(probeKeys, eq.R)
					buildKeys = append(buildKeys, eq.L)
					continue
				}
			}
			residual = append(residual, pc.expr)
		}
		pending = still

		// Build on the smaller input; probe with the larger.
		build, probe := other, cur
		if build.Rows() > probe.Rows() {
			build, probe = cur, other
			buildKeys, probeKeys = probeKeys, buildKeys
		}
		est := probe.Rows() * maxf(build.Rows()/10, 1)
		if est > probe.Rows()*build.Rows() {
			est = probe.Rows() * build.Rows()
		}
		est = sanitizeRows(est)
		cur = &HashJoin{
			Build:     build,
			Probe:     probe,
			BuildKeys: buildKeys,
			ProbeKeys: probeKeys,
			Residual:  residual,
			est:       est,
		}
	}
	if len(pending) > 0 {
		// Should not happen: all tables joined means all conjuncts covered.
		return nil, fmt.Errorf("plan: internal error: %d unplaced conjuncts", len(pending))
	}
	return cur, nil
}

func subset(a, b map[int]bool) bool {
	for t := range a {
		if !b[t] {
			return false
		}
	}
	return true
}

// singleOwner returns the remaining-subtree id whose tables cover ts, if
// exactly one does.
func singleOwner(ts map[int]bool, remaining map[int]Node) int {
	for id, nd := range remaining {
		if subset(ts, nd.Tables()) {
			return id
		}
	}
	return -1
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
