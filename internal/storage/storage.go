// Package storage implements in-memory columnar table storage.
//
// Column data lives in little-endian byte buffers whose capacity is always a
// multiple of the 64 KiB WebAssembly page, so a column can be rewired into a
// module's linear memory verbatim (wmem.Map) with zero copying — the storage
// layout is the guest layout. All execution engines, compiled and
// interpreted alike, read columns through the same accessors, so no engine
// gets an unfair substrate advantage in the benchmarks.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"wasmdb/internal/types"
)

// PageSize is the alignment unit for column buffers (one wasm page).
const PageSize = 64 * 1024

// Column is a single typed column.
type Column struct {
	Name string
	Type types.Type
	data []byte
	rows int
}

// NewColumn creates an empty column.
func NewColumn(name string, t types.Type) *Column {
	return &Column{Name: name, Type: t}
}

// Rows returns the number of values in the column.
func (c *Column) Rows() int { return c.rows }

// Data returns the raw little-endian buffer, padded to a page multiple —
// ready for wmem.Map.
func (c *Column) Data() []byte {
	need := pageCeil(c.rows * c.Type.Size())
	if cap(c.data) < need {
		grown := make([]byte, need)
		copy(grown, c.data)
		c.data = grown
	}
	return c.data[:need]
}

// MappedBytes returns the size of Data() in bytes.
func (c *Column) MappedBytes() int { return pageCeil(c.rows * c.Type.Size()) }

func pageCeil(n int) int { return (n + PageSize - 1) &^ (PageSize - 1) }

func (c *Column) grow(n int) []byte {
	sz := c.Type.Size()
	need := (c.rows + n) * sz
	if need > len(c.data) {
		newCap := pageCeil(need*2 + PageSize)
		grown := make([]byte, newCap)
		copy(grown, c.data)
		c.data = grown
	}
	off := c.rows * sz
	c.rows += n
	return c.data[off : off+n*sz]
}

// Reserve pre-allocates capacity for n additional rows.
func (c *Column) Reserve(n int) {
	sz := c.Type.Size()
	need := (c.rows + n) * sz
	if need > len(c.data) {
		grown := make([]byte, pageCeil(need))
		copy(grown, c.data)
		c.data = grown
	}
}

// AppendInt32 appends an INT or DATE value.
func (c *Column) AppendInt32(v int32) {
	binary.LittleEndian.PutUint32(c.grow(1), uint32(v))
}

// AppendInt64 appends a BIGINT or DECIMAL raw value.
func (c *Column) AppendInt64(v int64) {
	binary.LittleEndian.PutUint64(c.grow(1), uint64(v))
}

// AppendFloat64 appends a DOUBLE value via its bit pattern.
func (c *Column) AppendFloat64(v float64) {
	binary.LittleEndian.PutUint64(c.grow(1), math.Float64bits(v))
}

// AppendBool appends a BOOLEAN value.
func (c *Column) AppendBool(v bool) {
	b := c.grow(1)
	if v {
		b[0] = 1
	} else {
		b[0] = 0
	}
}

// AppendChar appends a CHAR(n) value, space-padded or truncated to width.
func (c *Column) AppendChar(s string) {
	b := c.grow(1)
	n := copy(b, s)
	for i := n; i < len(b); i++ {
		b[i] = ' '
	}
}

// AppendValue appends a generic value of the column's type.
func (c *Column) AppendValue(v types.Value) {
	switch c.Type.Kind {
	case types.Bool:
		c.AppendBool(v.I != 0)
	case types.Int32, types.Date:
		c.AppendInt32(int32(v.I))
	case types.Int64, types.Decimal:
		c.AppendInt64(v.I)
	case types.Float64:
		c.AppendFloat64(v.F)
	case types.Char:
		c.AppendChar(v.S)
	}
}

// I32At reads an INT or DATE value.
func (c *Column) I32At(i int) int32 {
	return int32(binary.LittleEndian.Uint32(c.data[i*4:]))
}

// I64At reads a BIGINT or DECIMAL raw value.
func (c *Column) I64At(i int) int64 {
	return int64(binary.LittleEndian.Uint64(c.data[i*8:]))
}

// F64At reads a DOUBLE value.
func (c *Column) F64At(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(c.data[i*8:]))
}

// BoolAt reads a BOOLEAN value.
func (c *Column) BoolAt(i int) bool { return c.data[i] != 0 }

// CharAt reads a CHAR value with trailing padding stripped.
func (c *Column) CharAt(i int) string {
	n := c.Type.Length
	b := c.data[i*n : (i+1)*n]
	end := n
	for end > 0 && b[end-1] == ' ' {
		end--
	}
	return string(b[:end])
}

// CharBytesAt returns the raw fixed-width bytes of a CHAR value.
func (c *Column) CharBytesAt(i int) []byte {
	n := c.Type.Length
	return c.data[i*n : (i+1)*n]
}

// ValueAt reads a generic value.
func (c *Column) ValueAt(i int) types.Value {
	switch c.Type.Kind {
	case types.Bool:
		return types.NewBool(c.BoolAt(i))
	case types.Int32:
		return types.NewInt32(c.I32At(i))
	case types.Date:
		return types.NewDate(c.I32At(i))
	case types.Int64:
		return types.NewInt64(c.I64At(i))
	case types.Decimal:
		return types.NewDecimal(c.I64At(i), c.Type.Prec, c.Type.Scale)
	case types.Float64:
		return types.NewFloat64(c.F64At(i))
	case types.Char:
		return types.Value{Type: c.Type, S: c.CharAt(i)}
	}
	panic("storage: unknown kind")
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name    string
	Columns []*Column
}

// NewTable creates a table with the given column names and types.
func NewTable(name string, cols []string, ts []types.Type) *Table {
	if len(cols) != len(ts) {
		panic("storage: column/type count mismatch")
	}
	t := &Table{Name: name}
	for i := range cols {
		t.Columns = append(t.Columns, NewColumn(cols[i], ts[i]))
	}
	return t
}

// Rows returns the table's row count.
func (t *Table) Rows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].rows
}

// Column returns the column with the given name.
func (t *Table) Column(name string) (*Column, error) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("storage: table %s has no column %q", t.Name, name)
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// AppendRow appends one row of values in column order.
func (t *Table) AppendRow(vals ...types.Value) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("storage: table %s expects %d values, got %d", t.Name, len(t.Columns), len(vals))
	}
	for i, v := range vals {
		t.Columns[i].AppendValue(v)
	}
	return nil
}
