package storage

import (
	"testing"
	"testing/quick"

	"wasmdb/internal/types"
)

func TestColumnAppendRead(t *testing.T) {
	c := NewColumn("x", types.TInt32)
	for i := 0; i < 1000; i++ {
		c.AppendInt32(int32(i * 3))
	}
	if c.Rows() != 1000 {
		t.Fatalf("rows = %d", c.Rows())
	}
	for i := 0; i < 1000; i++ {
		if c.I32At(i) != int32(i*3) {
			t.Fatalf("row %d = %d", i, c.I32At(i))
		}
	}
}

func TestColumnTypesRoundtrip(t *testing.T) {
	tbl := NewTable("t",
		[]string{"b", "i", "big", "f", "d", "dec", "s"},
		[]types.Type{types.TBool, types.TInt32, types.TInt64, types.TFloat64,
			types.TDate, types.TDecimal(10, 2), types.TChar(6)})
	rows := [][]types.Value{
		{types.NewBool(true), types.NewInt32(-5), types.NewInt64(1 << 40),
			types.NewFloat64(3.25), types.NewDate(12345), types.NewDecimal(-995, 10, 2),
			types.NewChar("hello", 6)},
		{types.NewBool(false), types.NewInt32(7), types.NewInt64(-9),
			types.NewFloat64(-0.5), types.NewDate(-1), types.NewDecimal(0, 10, 2),
			types.NewChar("", 6)},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	for ri, r := range rows {
		for ci, want := range r {
			got := tbl.Columns[ci].ValueAt(ri)
			if got.String() != want.String() {
				t.Errorf("(%d,%d): %s != %s", ri, ci, got, want)
			}
		}
	}
}

func TestCharPaddingAndTruncation(t *testing.T) {
	c := NewColumn("s", types.TChar(4))
	c.AppendChar("ab")
	c.AppendChar("abcdef") // truncated to width
	if got := c.CharAt(0); got != "ab" {
		t.Errorf("padded read: %q", got)
	}
	if got := string(c.CharBytesAt(0)); got != "ab  " {
		t.Errorf("raw bytes: %q", got)
	}
	if got := c.CharAt(1); got != "abcd" {
		t.Errorf("truncated read: %q", got)
	}
}

func TestDataIsPageAligned(t *testing.T) {
	c := NewColumn("x", types.TInt64)
	for i := 0; i < 10; i++ {
		c.AppendInt64(int64(i))
	}
	d := c.Data()
	if len(d)%PageSize != 0 {
		t.Errorf("Data length %d not page-aligned", len(d))
	}
	if c.MappedBytes() != len(d) {
		t.Errorf("MappedBytes %d != len(Data) %d", c.MappedBytes(), len(d))
	}
	// Values still readable through the padded buffer.
	if c.I64At(9) != 9 {
		t.Error("value lost after padding")
	}
}

func TestDataSurvivesGrowth(t *testing.T) {
	c := NewColumn("x", types.TInt32)
	f := func(vals []int32) bool {
		c2 := NewColumn("y", types.TInt32)
		for _, v := range vals {
			c2.AppendInt32(v)
		}
		for i, v := range vals {
			if c2.I32At(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	_ = c
}

func TestTableHelpers(t *testing.T) {
	tbl := NewTable("t", []string{"a", "b"}, []types.Type{types.TInt32, types.TInt32})
	if tbl.ColumnIndex("b") != 1 || tbl.ColumnIndex("z") != -1 {
		t.Error("ColumnIndex")
	}
	if _, err := tbl.Column("a"); err != nil {
		t.Error(err)
	}
	if _, err := tbl.Column("nope"); err == nil {
		t.Error("missing column accepted")
	}
	if err := tbl.AppendRow(types.NewInt32(1)); err == nil {
		t.Error("short row accepted")
	}
	if tbl.Rows() != 0 {
		t.Error("failed append changed row count")
	}
}

func TestReserve(t *testing.T) {
	c := NewColumn("x", types.TFloat64)
	c.Reserve(100000)
	for i := 0; i < 100000; i++ {
		c.AppendFloat64(float64(i))
	}
	if c.F64At(99999) != 99999 {
		t.Error("reserve broke appends")
	}
}
