package experiments

import (
	"strings"
	"testing"

	"wasmdb/internal/harness"
	"wasmdb/internal/tpch"
	"wasmdb/internal/workload"
)

// tiny options keep the experiment machinery tests fast.
func tinyOpts() Options {
	return Options{Rows: 5000, Reps: 1, SF: 0.002}
}

func TestRunOnAllSystemsAgree(t *testing.T) {
	cat, err := workload.Catalog(workload.Spec{Name: "t", Rows: 2000, IntCols: 2, FloatCols: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := "SELECT COUNT(*) FROM t WHERE i0 < 0"
	for _, sys := range append(DefaultSystems, "liftoff", "turbofan", "adaptive") {
		tm, err := RunOn(cat, src, sys, false)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if tm.Execute <= 0 {
			t.Errorf("%s: no execution time", sys)
		}
	}
	if _, err := RunOn(cat, src, "nonsense", false); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestFig6Machinery(t *testing.T) {
	o := tinyOpts()
	o.Systems = []string{"mutable", "vectorized"}
	fig := Fig6a(o)
	if len(fig.Series) != 2 {
		t.Fatalf("series: %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != len(fig.XTicks) {
			t.Errorf("%s: %d points for %d ticks", s.System, len(s.Points), len(fig.XTicks))
		}
	}
}

func TestFig10Machinery(t *testing.T) {
	o := tinyOpts()
	var sb strings.Builder
	if err := Fig10(o, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range tpch.QueryIDs {
		if !strings.Contains(out, id) {
			t.Errorf("missing %s in output", id)
		}
	}
	if !strings.Contains(out, "mutable") || !strings.Contains(out, "hyper") {
		t.Error("missing systems")
	}
}

func TestFig1Machinery(t *testing.T) {
	o := tinyOpts()
	var sb strings.Builder
	if err := Fig1(o, &sb); err != nil {
		t.Fatal(err)
	}
	for _, sys := range []string{"liftoff", "turbofan", "adaptive", "hyper"} {
		if !strings.Contains(sb.String(), sys) {
			t.Errorf("missing %s", sys)
		}
	}
}

func TestAblationMachinery(t *testing.T) {
	o := tinyOpts()
	fig := AblationSort(o)
	if len(fig.Series) != 2 {
		t.Fatalf("series: %d", len(fig.Series))
	}
	var sb strings.Builder
	AblationRewiring(o, &sb)
	if !strings.Contains(sb.String(), "rewire") {
		t.Error("rewiring ablation output")
	}
	if err := AblationTiers(o, &sb); err != nil {
		t.Fatal(err)
	}
	_ = harness.Reps
}
