package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"wasmdb/internal/harness"
	"wasmdb/internal/workload"
)

// Record is one machine-readable benchmark measurement — the schema of the
// BENCH_*.json files cmd/bench emits with -json, consumed by plotting and
// regression-tracking scripts.
type Record struct {
	// Name identifies the measurement ("smoke", "fig6a:10%", ...).
	Name string `json:"name"`
	// Backend is the system measured (mutable, hyper, vectorized, volcano,
	// liftoff, turbofan, adaptive).
	Backend string `json:"backend"`
	// Rows is the input cardinality, when the experiment has one.
	Rows int `json:"rows,omitempty"`
	// Phase times in nanoseconds (zero when the phase does not apply).
	TranslateNs int64 `json:"translate_ns"`
	LiftoffNs   int64 `json:"liftoff_ns"`
	TurbofanNs  int64 `json:"turbofan_ns"`
	ExecNs      int64 `json:"exec_ns"`
	// Morsel counts per tier under adaptive execution.
	MorselsLiftoff  uint64 `json:"morsels_liftoff"`
	MorselsTurbofan uint64 `json:"morsels_turbofan"`
	// Workers is the morsel worker-pool size (scaling experiment; 0 when
	// the experiment does not vary parallelism).
	Workers int `json:"workers,omitempty"`
	// Fallback is the serial-fallback reason reported by the executor
	// (empty when the run parallelized as classified).
	Fallback string `json:"fallback,omitempty"`
	// Choice is the autopilot's routing decision for backend-auto runs
	// ("volcano" | "vectorized" | "liftoff" | "adaptive"; empty for manual
	// backends).
	Choice string `json:"choice,omitempty"`
	// Serving-experiment fields (BENCH_serving.json), one record per
	// concurrency level of the load harness. The four rate/latency fields
	// are deliberately not omitempty: a 0.0 rejection rate at low
	// concurrency is a measurement, not a missing value.
	Concurrency      int     `json:"concurrency,omitempty"`
	Requests         int     `json:"requests,omitempty"`
	Rejected         int     `json:"rejected,omitempty"`
	P50Ns            int64   `json:"p50_ns,omitempty"`
	ThroughputQPS    float64 `json:"throughput_qps"`
	P99Ns            int64   `json:"p99_ns"`
	RejectionRate    float64 `json:"rejection_rate"`
	PlanCacheHitRate float64 `json:"plancache_hit_rate"`
	// TelemetryOverheadPct is the p50 latency regression of full telemetry
	// (query log + per-query flight-recorder capture) over the baseline
	// server, measured by the serving experiment's overhead probe. The
	// experiment fails if it exceeds the 5% budget.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct,omitempty"`
}

func recordFromTimings(name, backend string, rows int, tm Timings) Record {
	return Record{
		Name:            name,
		Backend:         backend,
		Rows:            rows,
		TranslateNs:     tm.Translate.Nanoseconds(),
		LiftoffNs:       tm.Liftoff.Nanoseconds(),
		TurbofanNs:      tm.Turbofan.Nanoseconds(),
		ExecNs:          tm.Execute.Nanoseconds(),
		MorselsLiftoff:  tm.MorselsLo,
		MorselsTurbofan: tm.MorselsTf,
	}
}

// RecordsFromFigure flattens a rendered figure into records, one per
// (tick, system) point. Figures measure pure execution time, so only
// ExecNs is populated.
func RecordsFromFigure(id string, f *harness.Figure) []Record {
	var recs []Record
	for i, tick := range f.XTicks {
		for _, s := range f.Series {
			if i >= len(s.Points) {
				continue
			}
			recs = append(recs, Record{
				Name:    id + ":" + tick,
				Backend: s.System,
				ExecNs:  s.Points[i].Nanoseconds(),
			})
		}
	}
	return recs
}

// WriteRecords serializes records as indented JSON.
func WriteRecords(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// Smoke runs one small micro-benchmark (a selective aggregation) per
// configured system, adaptively, and returns the full phase breakdown for
// each — the cheap end-to-end health check behind `make bench-smoke`.
func Smoke(o Options) ([]Record, error) {
	o.norm()
	cat, err := workload.Catalog(workload.Spec{
		Name: "t", Rows: o.Rows, IntCols: 2, FloatCols: 2, Seed: 4242,
	})
	if err != nil {
		return nil, err
	}
	src := "SELECT COUNT(*), SUM(f0) FROM t WHERE i0 < 0"
	var recs []Record
	for _, sys := range o.Systems {
		tm, err := RunOn(cat, src, sys, true)
		if err != nil {
			return nil, fmt.Errorf("smoke on %s: %w", sys, err)
		}
		recs = append(recs, recordFromTimings("smoke", sys, o.Rows, tm))
	}
	return recs, nil
}
