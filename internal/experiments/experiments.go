// Package experiments regenerates every table and figure of the paper's
// evaluation (§8) plus the ablations DESIGN.md calls out. cmd/bench is a
// thin flag-parsing wrapper around this package; bench_test.go exposes the
// same workloads as testing.B benchmarks.
//
// Systems are labeled after the systems they stand in for (§8.1):
//
//	mutable     — the paper's architecture (internal/core, TurboFan tier)
//	hyper       — HyPer-like (library designs + LLVM-grade compile)
//	vectorized  — DuckDB-like (generic kernels + selection vectors)
//	volcano     — PostgreSQL-like (tuple-at-a-time, boxed)
//
// Execution-time figures (6–9) report pure execution on fully optimized
// code, as the paper does ("we report only execution times without
// compilation times; we further enforce compilation with the optimizing
// TurboFan compiler"). Figure 10 reports the full phase breakdown.
package experiments

import (
	"fmt"
	"io"
	"time"

	"wasmdb/internal/catalog"
	"wasmdb/internal/core"
	"wasmdb/internal/engine"
	"wasmdb/internal/harness"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/tpch"
	"wasmdb/internal/vectorized"
	"wasmdb/internal/volcano"
	"wasmdb/internal/workload"
)

// Options scales the experiments. The paper runs 10 M rows and TPC-H SF 1;
// the defaults here are sized for an interpreted-VM substrate — pass
// -full for paper-scale runs.
type Options struct {
	Rows    int
	Reps    int
	SF      float64
	Systems []string
	Out     io.Writer
}

// DefaultSystems lists all four architectures.
var DefaultSystems = []string{"mutable", "hyper", "vectorized", "volcano"}

func (o *Options) norm() {
	if o.Rows == 0 {
		o.Rows = 1_000_000
	}
	if o.Reps == 0 {
		o.Reps = harness.Reps
	}
	if o.SF == 0 {
		o.SF = 0.05
	}
	if len(o.Systems) == 0 {
		o.Systems = DefaultSystems
	}
}

func (o *Options) has(sys string) bool {
	for _, s := range o.Systems {
		if s == sys {
			return true
		}
	}
	return false
}

// Timings is a full phase breakdown of one run.
type Timings struct {
	Translate time.Duration
	Liftoff   time.Duration
	Turbofan  time.Duration
	Execute   time.Duration
	MorselsLo uint64
	MorselsTf uint64
}

// RunOn executes src against cat on the named system and returns the phase
// breakdown. adaptive=true runs the wasm backends in adaptive mode (Fig. 10
// and the tier ablation); otherwise execution waits for optimized code.
func RunOn(cat *catalog.Catalog, src, system string, adaptive bool) (Timings, error) {
	var tm Timings
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		return tm, err
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		return tm, err
	}
	p, err := plan.Build(q)
	if err != nil {
		return tm, err
	}

	switch system {
	case "volcano":
		t0 := time.Now()
		if _, _, err := volcano.Run(q, p); err != nil {
			return tm, err
		}
		tm.Execute = time.Since(t0)
	case "vectorized":
		t0 := time.Now()
		if _, _, _, err := vectorized.Run(q, p); err != nil {
			return tm, err
		}
		tm.Execute = time.Since(t0)
	case "mutable", "hyper", "liftoff", "turbofan", "adaptive":
		style := core.Style{}
		cfg := engine.Config{Tier: engine.TierTurbofan}
		wait := true
		switch system {
		case "hyper":
			style = core.Style{LibraryHT: true, LibrarySort: true, PredicatedSelection: true}
			cfg.OptRounds = 10
			if adaptive {
				cfg.Tier = engine.TierAdaptive
				wait = false
			}
		case "liftoff":
			cfg.Tier = engine.TierLiftoff
			wait = false
		case "adaptive":
			cfg.Tier = engine.TierAdaptive
			wait = false
		case "mutable":
			if adaptive {
				cfg.Tier = engine.TierAdaptive
				wait = false
			}
		}
		t0 := time.Now()
		cq, err := core.CompileStyled(q, p, style)
		if err != nil {
			return tm, err
		}
		tm.Translate = time.Since(t0)
		t1 := time.Now()
		res, st, err := core.Execute(cq, q, engine.New(cfg), core.ExecOptions{WaitOptimized: wait})
		if err != nil {
			return tm, err
		}
		_ = res
		tm.Execute = time.Since(t1)
		tm.Liftoff = st.Liftoff
		tm.Turbofan = st.Turbofan
		tm.MorselsLo = st.MorselsLiftoff
		tm.MorselsTf = st.MorselsTurbofan
		if wait {
			// Compile happened before execution; subtract it from Execute.
			tm.Execute -= st.Turbofan + st.Liftoff
			if tm.Execute < 0 {
				tm.Execute = 0
			}
		}
	default:
		return tm, fmt.Errorf("experiments: unknown system %q", system)
	}
	return tm, nil
}

// execTime measures median execution time of src on system.
func execTime(o *Options, cat *catalog.Catalog, src, system string) time.Duration {
	return harness.Median(o.Reps, func() time.Duration {
		tm, err := RunOn(cat, src, system, false)
		if err != nil {
			panic(fmt.Sprintf("%s on %s: %v", system, src, err))
		}
		return tm.Execute
	})
}

// sweep runs one query template across ticks for every system.
func (o *Options) sweep(fig *harness.Figure, cat *catalog.Catalog, queryAt func(i int) string) {
	for i := range fig.XTicks {
		src := queryAt(i)
		for _, sys := range o.Systems {
			fig.Add(sys, execTime(o, cat, src, sys))
		}
	}
}

// selectivityCut converts a selectivity in percent to an int32 cutoff for a
// full-domain uniform column.
func selectivityCut(pct int) int64 {
	span := int64(1) << 32
	return -(int64(1) << 31) + span*int64(pct)/100
}

var pctTicks = []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

func pctLabels() []string {
	out := make([]string, len(pctTicks))
	for i, p := range pctTicks {
		out[i] = fmt.Sprintf("%d%%", p)
	}
	return out
}

// Fig6a: selection on a 32-bit integer column across selectivities.
func Fig6a(o Options) *harness.Figure {
	o.norm()
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: o.Rows, IntCols: 2, FloatCols: 2, Seed: 601})
	fig := harness.NewFigure(
		fmt.Sprintf("Fig 6a: selection COUNT(*) WHERE i0 < c, int32, %d rows", o.Rows),
		"selectivity", pctLabels()...)
	o.sweep(fig, cat, func(i int) string {
		return fmt.Sprintf("SELECT COUNT(*) FROM t WHERE i0 < %d", selectivityCut(pctTicks[i]))
	})
	return fig
}

// Fig6b: selection on a 64-bit float column across selectivities.
func Fig6b(o Options) *harness.Figure {
	o.norm()
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: o.Rows, IntCols: 2, FloatCols: 2, Seed: 602})
	fig := harness.NewFigure(
		fmt.Sprintf("Fig 6b: selection COUNT(*) WHERE f0 < c, float64, %d rows", o.Rows),
		"selectivity", pctLabels()...)
	o.sweep(fig, cat, func(i int) string {
		return fmt.Sprintf("SELECT COUNT(*) FROM t WHERE f0 < %d.%02d", pctTicks[i]/100, pctTicks[i]%100)
	})
	return fig
}

// Fig6c: two conditions with equal, varying selectivity.
func Fig6c(o Options) *harness.Figure {
	o.norm()
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: o.Rows, IntCols: 2, FloatCols: 2, Seed: 603})
	fig := harness.NewFigure(
		fmt.Sprintf("Fig 6c: COUNT(*) WHERE i0 < c AND i1 < c (equal per-condition selectivity), %d rows", o.Rows),
		"selectivity", pctLabels()...)
	o.sweep(fig, cat, func(i int) string {
		c := selectivityCut(pctTicks[i])
		return fmt.Sprintf("SELECT COUNT(*) FROM t WHERE i0 < %d AND i1 < %d", c, c)
	})
	return fig
}

// Fig6d: one condition varies, the other is fixed at 1%.
func Fig6d(o Options) *harness.Figure {
	o.norm()
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: o.Rows, IntCols: 2, FloatCols: 2, Seed: 604})
	fixed := selectivityCut(1)
	fig := harness.NewFigure(
		fmt.Sprintf("Fig 6d: COUNT(*) WHERE i0 < c AND i1 < 1%%, %d rows", o.Rows),
		"selectivity", pctLabels()...)
	o.sweep(fig, cat, func(i int) string {
		return fmt.Sprintf("SELECT COUNT(*) FROM t WHERE i0 < %d AND i1 < %d", selectivityCut(pctTicks[i]), fixed)
	})
	return fig
}

// Fig7a: grouping, varying row count (100 distinct groups).
func Fig7a(o Options) *harness.Figure {
	o.norm()
	rows := []int{o.Rows / 100, o.Rows / 10, o.Rows}
	ticks := make([]string, len(rows))
	for i, r := range rows {
		ticks[i] = fmt.Sprintf("%d", r)
	}
	fig := harness.NewFigure("Fig 7a: COUNT(*) GROUP BY g0 (100 groups), varying rows", "rows", ticks...)
	for i, r := range rows {
		cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: r, GroupCols: 1, GroupDistinct: 100, Seed: 701})
		_ = i
		for _, sys := range o.Systems {
			fig.Add(sys, execTime(&o, cat, "SELECT g0, COUNT(*) FROM t GROUP BY g0", sys))
		}
	}
	return fig
}

// Fig7b: grouping, varying number of distinct values.
func Fig7b(o Options) *harness.Figure {
	o.norm()
	distinct := []int{10, 100, 1000, 10000, 100000}
	ticks := make([]string, len(distinct))
	for i, d := range distinct {
		ticks[i] = fmt.Sprintf("%d", d)
	}
	fig := harness.NewFigure(
		fmt.Sprintf("Fig 7b: COUNT(*) GROUP BY g0, %d rows, varying distinct values", o.Rows),
		"distinct", ticks...)
	for _, d := range distinct {
		cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: o.Rows, GroupCols: 1, GroupDistinct: d, Seed: 702})
		for _, sys := range o.Systems {
			fig.Add(sys, execTime(&o, cat, "SELECT g0, COUNT(*) FROM t GROUP BY g0", sys))
		}
	}
	return fig
}

// Fig7c: grouping, varying number of group-by attributes (~10k groups).
func Fig7c(o Options) *harness.Figure {
	o.norm()
	attrs := []int{1, 2, 3, 4}
	perAttr := []int{10000, 100, 22, 10}
	ticks := []string{"1", "2", "3", "4"}
	fig := harness.NewFigure(
		fmt.Sprintf("Fig 7c: COUNT(*) GROUP BY g0..gn (~10k groups), %d rows", o.Rows),
		"attributes", ticks...)
	for ai, n := range attrs {
		cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: o.Rows, GroupCols: n, GroupDistinct: perAttr[ai], Seed: 703})
		cols := "g0"
		for k := 1; k < n; k++ {
			cols += fmt.Sprintf(", g%d", k)
		}
		src := fmt.Sprintf("SELECT %s, COUNT(*) FROM t GROUP BY %s", cols, cols)
		for _, sys := range o.Systems {
			fig.Add(sys, execTime(&o, cat, src, sys))
		}
	}
	return fig
}

// Fig7d: varying number of MIN aggregates (branch-free vs branching MIN).
func Fig7d(o Options) *harness.Figure {
	o.norm()
	counts := []int{1, 2, 4, 8}
	ticks := []string{"1", "2", "4", "8"}
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: o.Rows, IntCols: 8, Seed: 704})
	fig := harness.NewFigure(
		fmt.Sprintf("Fig 7d: MIN(i0)..MIN(in), %d rows (branch-free min/max via select)", o.Rows),
		"aggregates", ticks...)
	for _, n := range counts {
		sel := "MIN(i0)"
		for k := 1; k < n; k++ {
			sel += fmt.Sprintf(", MIN(i%d)", k)
		}
		src := "SELECT " + sel + " FROM t"
		for _, sys := range o.Systems {
			fig.Add(sys, execTime(&o, cat, src, sys))
		}
	}
	return fig
}

// Fig8a: foreign-key equi-join, varying build size (probe = 4×build).
func Fig8a(o Options) *harness.Figure {
	o.norm()
	sizes := []int{o.Rows / 64, o.Rows / 16, o.Rows / 4, o.Rows}
	ticks := make([]string, len(sizes))
	for i, s := range sizes {
		ticks[i] = fmt.Sprintf("%d", s)
	}
	fig := harness.NewFigure("Fig 8a: foreign-key join COUNT(*), probe=4×build, varying size", "build rows", ticks...)
	for _, n := range sizes {
		cat, _ := workload.JoinPair(n, 4*n, 1, 801)
		src := "SELECT COUNT(*) FROM build, probe WHERE build.pk = probe.fk"
		for _, sys := range o.Systems {
			fig.Add(sys, execTime(&o, cat, src, sys))
		}
	}
	return fig
}

// Fig8b: n:m equi-join on non-key columns, selectivity 1e-6.
func Fig8b(o Options) *harness.Figure {
	o.norm()
	sizes := []int{o.Rows / 16, o.Rows / 4, o.Rows / 2, o.Rows}
	ticks := make([]string, len(sizes))
	for i, s := range sizes {
		ticks[i] = fmt.Sprintf("%d", s)
	}
	// Fixed number of distinct join values: duplicates per key grow with n
	// (the paper fixes selectivity at 1e-6 and grows n, with the same
	// effect), so collision chains lengthen — the HyPer degradation of §8.2.
	distinct := o.Rows / 8
	if distinct < 1 {
		distinct = 1
	}
	fig := harness.NewFigure(
		fmt.Sprintf("Fig 8b: n:m join COUNT(*), %d distinct join values, n=m (expect superlinear; chains hurt hyper)", distinct),
		"rows per side", ticks...)
	for _, n := range sizes {
		cat, _ := workload.JoinPair(n, n, distinct, 802)
		src := "SELECT COUNT(*) FROM build, probe WHERE build.nk = probe.nk"
		for _, sys := range o.Systems {
			fig.Add(sys, execTime(&o, cat, src, sys))
		}
	}
	return fig
}

// Fig9 reproduces the sorting experiment in its three dimensions.
func Fig9(o Options) []*harness.Figure {
	o.norm()
	var figs []*harness.Figure

	// (a) varying rows.
	{
		rows := []int{o.Rows / 100, o.Rows / 10, o.Rows}
		ticks := make([]string, len(rows))
		for i, r := range rows {
			ticks[i] = fmt.Sprintf("%d", r)
		}
		fig := harness.NewFigure("Fig 9a: ORDER BY i0 LIMIT 100, varying rows", "rows", ticks...)
		for _, r := range rows {
			cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: r, IntCols: 4, Seed: 901})
			src := "SELECT i0 FROM t ORDER BY i0 LIMIT 100"
			for _, sys := range o.Systems {
				fig.Add(sys, execTime(&o, cat, src, sys))
			}
		}
		figs = append(figs, fig)
	}

	// (b) varying distinct values of the sort key.
	{
		distinct := []int{10, 1000, 100000}
		ticks := []string{"10", "1000", "100000"}
		fig := harness.NewFigure(
			fmt.Sprintf("Fig 9b: ORDER BY g0 LIMIT 100, %d rows, varying distinct", o.Rows), "distinct", ticks...)
		for _, d := range distinct {
			cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: o.Rows, GroupCols: 1, GroupDistinct: d, Seed: 902})
			src := "SELECT g0 FROM t ORDER BY g0 LIMIT 100"
			for _, sys := range o.Systems {
				fig.Add(sys, execTime(&o, cat, src, sys))
			}
		}
		figs = append(figs, fig)
	}

	// (c) varying number of sort attributes.
	{
		attrs := []int{1, 2, 4}
		ticks := []string{"1", "2", "4"}
		cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: o.Rows, IntCols: 4, Seed: 903})
		fig := harness.NewFigure(
			fmt.Sprintf("Fig 9c: ORDER BY i0..in LIMIT 100, %d rows", o.Rows), "attributes", ticks...)
		for _, n := range attrs {
			keys := "i0"
			for k := 1; k < n; k++ {
				keys += fmt.Sprintf(", i%d", k)
			}
			src := fmt.Sprintf("SELECT i0 FROM t ORDER BY %s LIMIT 100", keys)
			for _, sys := range o.Systems {
				fig.Add(sys, execTime(&o, cat, src, sys))
			}
		}
		figs = append(figs, fig)
	}
	return figs
}

// Fig10 reports the per-phase TPC-H breakdown (translate, baseline compile,
// optimizing compile, execution) for the wasm architecture and the
// HyPer-like baseline, plus execution times of the interpreting baselines.
func Fig10(o Options, out io.Writer) error {
	o.norm()
	cat, err := tpch.Generate(o.SF, 42)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n== Fig 10: TPC-H (SF %.2f) compilation and execution phases ==\n", o.SF)
	fmt.Fprintf(out, "%-5s%-11s%12s%12s%12s%12s%14s\n",
		"query", "system", "translate", "liftoff", "turbofan", "execute", "morsels lo/tf")
	for _, id := range tpch.QueryIDs {
		src := tpch.Queries[id]
		for _, sys := range []string{"mutable", "hyper"} {
			if !o.has(sys) {
				continue
			}
			tm, err := RunOn(cat, src, sys, true) // adaptive: the architecture under test
			if err != nil {
				return fmt.Errorf("%s on %s: %w", id, sys, err)
			}
			fmt.Fprintf(out, "%-5s%-11s%12s%12s%12s%12s%9d/%d\n",
				id, sys, fmtDur(tm.Translate), fmtDur(tm.Liftoff), fmtDur(tm.Turbofan),
				fmtDur(tm.Execute), tm.MorselsLo, tm.MorselsTf)
		}
		for _, sys := range []string{"vectorized", "volcano"} {
			if !o.has(sys) {
				continue
			}
			tm, err := RunOn(cat, src, sys, false)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", id, sys, err)
			}
			fmt.Fprintf(out, "%-5s%-11s%12s%12s%12s%12s%14s\n",
				id, sys, "-", "-", "-", fmtDur(tm.Execute), "-")
		}
	}
	return nil
}

// Fig1 is the paper's headline: compile time vs execution time on TPC-H Q1
// for the adaptive wasm architecture vs the LLVM-grade pipeline.
func Fig1(o Options, out io.Writer) error {
	o.norm()
	cat, err := tpch.Generate(o.SF, 42)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n== Fig 1: compile vs execute, TPC-H Q1 (SF %.2f) ==\n", o.SF)
	for _, sys := range []string{"liftoff", "turbofan", "adaptive", "hyper"} {
		tm, err := RunOn(cat, tpch.Queries["Q1"], sys, true)
		if err != nil {
			return err
		}
		total := tm.Translate + tm.Execute
		if sys == "turbofan" {
			total += tm.Turbofan
		}
		if sys == "liftoff" {
			total += tm.Liftoff
		}
		fmt.Fprintf(out, "%-10s translate=%-10s liftoff=%-10s turbofan=%-10s execute=%-10s latency≈%s\n",
			sys, fmtDur(tm.Translate), fmtDur(tm.Liftoff), fmtDur(tm.Turbofan), fmtDur(tm.Execute), fmtDur(total))
	}
	return nil
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "0"
	}
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}
