package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"wasmdb"
	"wasmdb/internal/server"
	"wasmdb/internal/workload"
)

// Serving measures the concurrent query service under a k6-style ramping
// load: a small server (2 execution slots, a 2-deep admission queue, a
// shared 2-slot morsel scheduler) is driven at 1, 4, and 8 virtual users —
// the top stage saturating it at 4x capacity — with parameterized TPC-H
// point queries churning the plan cache. One record per concurrency level:
// throughput, p50/p99 latency, the explicit-rejection rate (which must be
// zero when under-provisioned clients arrive and non-zero at saturation —
// shedding, not queueing), and the plan-cache hit rate under churn.
func Serving(o Options) ([]Record, error) {
	o.norm()
	db := wasmdb.Open()
	if err := db.LoadTPCH(o.SF, 42); err != nil {
		return nil, err
	}
	cfg := server.Config{
		MaxConcurrent: 2,
		MaxQueue:      2,
		QueueTimeout:  100 * time.Millisecond,
		QueryTimeout:  10 * time.Second,
		WorkerSlots:   2,
	}
	srv := server.New(db, cfg)
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		hs.Close()
	}()
	client := hs.Client()

	post := func(ctx context.Context, path string, body any) (int, map[string]any, error) {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		req, err := http.NewRequestWithContext(ctx, "POST", hs.URL+path, bytes.NewReader(b))
		if err != nil {
			return 0, nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var m map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m, nil
	}

	// One session per VU, parallelism 2, so concurrent queries contend for
	// the shared scheduler's slots and exercise the worker-slots fallback.
	levels := []int{1, 4, 8}
	maxVUs := levels[len(levels)-1]
	sessions := make([]string, maxVUs)
	for i := range sessions {
		status, m, err := post(context.Background(), "/v1/session", nil)
		if err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("serving: session create: %d %v %v", status, m, err)
		}
		sessions[i] = m["session"].(string)
		status, m, err = post(context.Background(), "/v1/set",
			map[string]string{"session": sessions[i], "key": "parallelism", "value": "2"})
		if err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("serving: session set: %d %v %v", status, m, err)
		}
	}

	// Parameterized point queries over lineitem: three shapes, a rotating
	// literal each iteration — after three cold misses everything should be
	// a plan-cache hit despite the churn in constants.
	shapes := []string{
		"SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < ?",
		"SELECT COUNT(*), SUM(l_discount) FROM lineitem WHERE l_quantity < ?",
		"SELECT MIN(l_extendedprice), MAX(l_extendedprice) FROM lineitem WHERE l_quantity < ?",
	}
	var iterSeq atomic.Int64
	iter := func(ctx context.Context, vu int) error {
		n := iterSeq.Add(1)
		body := map[string]any{
			"session": sessions[vu],
			"sql":     shapes[int(n)%len(shapes)],
			"args":    []any{1 + n%50},
		}
		status, m, err := post(ctx, "/v1/query", body)
		if err != nil {
			return err
		}
		switch status {
		case http.StatusOK:
			return nil
		case http.StatusTooManyRequests:
			return fmt.Errorf("%v: %w", m["code"], workload.ErrRejected)
		default:
			return fmt.Errorf("serving: query failed: %d %v", status, m)
		}
	}

	var recs []Record
	for _, vus := range levels {
		before := db.PlanCacheStats()
		stats := workload.RunLoad(context.Background(),
			workload.LoadSpec{Stages: []workload.Stage{{Duration: 450 * time.Millisecond, VUs: vus}}}, iter)
		after := db.PlanCacheStats()

		if stats.Failed > 0 {
			return nil, fmt.Errorf("serving: %d requests failed outright at %d VUs (want success or explicit rejection only)",
				stats.Failed, vus)
		}
		if stats.Completed == 0 {
			return nil, fmt.Errorf("serving: nothing completed at %d VUs", vus)
		}
		if vus >= 4*cfg.MaxConcurrent && stats.Rejected == 0 {
			return nil, fmt.Errorf("serving: zero rejections at %d VUs on %d slots — admission control did not shed",
				vus, cfg.MaxConcurrent)
		}

		lookups := float64(after.Hits - before.Hits + after.Misses - before.Misses)
		hitRate := 0.0
		if lookups > 0 {
			hitRate = float64(after.Hits-before.Hits) / lookups
		}
		recs = append(recs, Record{
			Name:             fmt.Sprintf("serving:c%d", vus),
			Backend:          "mutable",
			Concurrency:      vus,
			Requests:         stats.Requests(),
			Rejected:         stats.Rejected,
			ThroughputQPS:    stats.Throughput(),
			P50Ns:            stats.Percentile(0.50).Nanoseconds(),
			P99Ns:            stats.Percentile(0.99).Nanoseconds(),
			RejectionRate:    stats.RejectionRate(),
			PlanCacheHitRate: hitRate,
		})
	}

	overhead, err := telemetryOverhead(db, cfg)
	if err != nil {
		return nil, err
	}
	recs = append(recs, overhead)
	return recs, nil
}

// telemetryOverhead measures the p50 cost of running the serving layer's
// telemetry at its most expensive setting — a query-log sink attached, the
// flight recorder capturing every query (sample 1-in-1), every query
// classified slow so the rate-limited span promotion is exercised — against
// the baseline server (no sink, default 1-in-64 sampling). Both sides take
// the best-of-3 p50 over identical single-shape serial load, so scheduler
// and plan-cache variance cancel out; the telemetry budget is ≤5% p50, and
// the experiment fails loudly if it is exceeded.
func telemetryOverhead(db *wasmdb.DB, base server.Config) (Record, error) {
	full := base
	full.QueryLogWriter = io.Discard
	full.TraceSampleEvery = 1
	full.SlowQuery = time.Nanosecond

	p50 := func(cfg server.Config) (int64, error) {
		srv := server.New(db, cfg)
		hs := httptest.NewServer(srv.Handler())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			hs.Close()
		}()
		client := hs.Client()
		var seq atomic.Int64
		iter := func(ctx context.Context, vu int) error {
			n := seq.Add(1)
			body, _ := json.Marshal(map[string]any{
				"sql":  "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < ?",
				"args": []any{1 + n%50},
			})
			req, err := http.NewRequestWithContext(ctx, "POST", hs.URL+"/v1/query", bytes.NewReader(body))
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("telemetry probe: query failed: %d", resp.StatusCode)
			}
			return nil
		}
		best := int64(0)
		for rep := 0; rep < 3; rep++ {
			stats := workload.RunLoad(context.Background(),
				workload.LoadSpec{Stages: []workload.Stage{{Duration: 300 * time.Millisecond, VUs: 2}}}, iter)
			if stats.Failed > 0 || stats.Completed == 0 {
				return 0, fmt.Errorf("telemetry probe: %d failed, %d completed", stats.Failed, stats.Completed)
			}
			if p := stats.Percentile(0.50).Nanoseconds(); best == 0 || p < best {
				best = p
			}
		}
		return best, nil
	}

	baseP50, err := p50(base)
	if err != nil {
		return Record{}, err
	}
	fullP50, err := p50(full)
	if err != nil {
		return Record{}, err
	}
	pct := float64(fullP50-baseP50) * 100 / float64(baseP50)
	if pct > 5 {
		return Record{}, fmt.Errorf("serving: telemetry overhead %.1f%% p50 exceeds the 5%% budget (base %dns, full %dns)",
			pct, baseP50, fullP50)
	}
	return Record{
		Name:                 "serving:telemetry-overhead",
		Backend:              "mutable",
		Concurrency:          2,
		P50Ns:                fullP50,
		TelemetryOverheadPct: pct,
	}, nil
}
