package experiments

import (
	"fmt"
	"io"
	"time"

	"wasmdb/internal/catalog"
	"wasmdb/internal/core"
	"wasmdb/internal/engine"
	"wasmdb/internal/engine/wmem"
	"wasmdb/internal/harness"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/tpch"
	"wasmdb/internal/workload"
)

// styledExec measures execution time of src compiled with the given style
// (optimizing tier, compile excluded).
func styledExec(o *Options, cat *catalog.Catalog, src string, style core.Style) time.Duration {
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		panic(err)
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		panic(err)
	}
	p, err := plan.Build(q)
	if err != nil {
		panic(err)
	}
	cq, err := core.CompileStyled(q, p, style)
	if err != nil {
		panic(err)
	}
	eng := engine.New(engine.Config{Tier: engine.TierTurbofan})
	return harness.Median(o.Reps, func() time.Duration {
		t0 := time.Now()
		if _, _, err := core.Execute(cq, q, eng, core.ExecOptions{}); err != nil {
			panic(err)
		}
		return time.Since(t0)
	})
}

// AblationHashTable quantifies §4.3's claim: ad-hoc generated, fully
// inlined hash tables vs the type-agnostic pre-compiled-library design
// (chained buckets, call_indirect comparator, one call per access).
func AblationHashTable(o Options) *harness.Figure {
	o.norm()
	fig := harness.NewFigure(
		fmt.Sprintf("Ablation §4.3: inlined specialized HT vs library HT, %d rows", o.Rows),
		"workload", "group-by 100", "group-by 100k", "fk-join")
	catG, _ := workload.Catalog(workload.Spec{Name: "t", Rows: o.Rows, GroupCols: 1, GroupDistinct: 100, Seed: 811})
	catG2, _ := workload.Catalog(workload.Spec{Name: "t", Rows: o.Rows, GroupCols: 1, GroupDistinct: 100_000, Seed: 812})
	catJ, _ := workload.JoinPair(o.Rows/4, o.Rows, 1, 813)
	groupQ := "SELECT g0, COUNT(*) FROM t GROUP BY g0"
	joinQ := "SELECT COUNT(*) FROM build, probe WHERE build.pk = probe.fk"

	fig.Add("generated", styledExec(&o, catG, groupQ, core.Style{}))
	fig.Add("library", styledExec(&o, catG, groupQ, core.Style{LibraryHT: true}))
	fig.Add("generated", styledExec(&o, catG2, groupQ, core.Style{}))
	fig.Add("library", styledExec(&o, catG2, groupQ, core.Style{LibraryHT: true}))
	fig.Add("generated", styledExec(&o, catJ, joinQ, core.Style{}))
	fig.Add("library", styledExec(&o, catJ, joinQ, core.Style{LibraryHT: true}))
	return fig
}

// AblationSort quantifies §5's claim: the generated quicksort with inlined
// comparisons vs the generic qsort with a comparator function pointer.
func AblationSort(o Options) *harness.Figure {
	o.norm()
	sizes := []int{o.Rows / 16, o.Rows / 4, o.Rows}
	ticks := make([]string, len(sizes))
	for i, s := range sizes {
		ticks[i] = fmt.Sprintf("%d", s)
	}
	fig := harness.NewFigure("Ablation §5: generated quicksort vs library qsort (Θ(n log n) comparator calls)", "rows", ticks...)
	for _, n := range sizes {
		cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: n, IntCols: 2, Seed: 821})
		src := "SELECT i0 FROM t ORDER BY i0, i1 LIMIT 100"
		fig.Add("generated", styledExec(&o, cat, src, core.Style{}))
		fig.Add("library", styledExec(&o, cat, src, core.Style{LibrarySort: true}))
	}
	return fig
}

// AblationRewiring quantifies §6.1's claim: rewiring host columns into the
// module's memory vs copying them in, measured as data-transfer setup cost.
func AblationRewiring(o Options, out io.Writer) {
	o.norm()
	tbl := workload.Generate(workload.Spec{Name: "t", Rows: o.Rows, IntCols: 4, FloatCols: 4, Seed: 831})
	totalBytes := 0
	for _, c := range tbl.Columns {
		totalBytes += c.MappedBytes()
	}
	pages := uint32(totalBytes/wmem.PageSize) + 8

	rewire := harness.Median(o.Reps, func() time.Duration {
		mem := wmem.New(pages, 65536)
		t0 := time.Now()
		addr := uint32(0)
		for _, c := range tbl.Columns {
			if err := mem.Map(addr, c.Data()); err != nil {
				panic(err)
			}
			addr += uint32(c.MappedBytes())
		}
		return time.Since(t0)
	})
	copyIn := harness.Median(o.Reps, func() time.Duration {
		mem := wmem.New(pages, 65536)
		t0 := time.Now()
		addr := uint32(0)
		for _, c := range tbl.Columns {
			mem.WriteBytes(addr, c.Data())
			addr += uint32(c.MappedBytes())
		}
		return time.Since(t0)
	})
	fmt.Fprintf(out, "\n== Ablation §6.1: rewiring vs copy-in (%d MiB of columns) ==\n", totalBytes>>20)
	fmt.Fprintf(out, "rewire (zero-copy map): %s\n", fmtDur(rewire))
	fmt.Fprintf(out, "copy-in:                %s\n", fmtDur(copyIn))
	if rewire > 0 {
		fmt.Fprintf(out, "speedup: %.1fx\n", float64(copyIn)/float64(rewire))
	}
}

// AblationTiers shows the latency/throughput trade-off of §2.2: baseline
// tier only, optimizing tier only, and adaptive, on a short and a long
// query.
func AblationTiers(o Options, out io.Writer) error {
	o.norm()
	catSmall, err := tpch.Generate(o.SF/10, 42)
	if err != nil {
		return err
	}
	catBig, err := tpch.Generate(o.SF, 42)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n== Ablation §2.2: tier latency vs throughput (TPC-H Q6) ==\n")
	for _, c := range []struct {
		name string
		cat  *catalog.Catalog
	}{{"short query (small data)", catSmall}, {"long query (large data)", catBig}} {
		fmt.Fprintf(out, "%s:\n", c.name)
		for _, sys := range []string{"liftoff", "turbofan", "adaptive"} {
			tm, err := RunOn(c.cat, tpch.Queries["Q6"], sys, true)
			if err != nil {
				return err
			}
			compile := tm.Liftoff
			if sys == "turbofan" {
				compile = tm.Turbofan
			}
			fmt.Fprintf(out, "  %-9s compile=%-10s execute=%-10s total=%-10s morsels lo/tf=%d/%d\n",
				sys, fmtDur(compile), fmtDur(tm.Execute), fmtDur(compile+tm.Execute+tm.Translate),
				tm.MorselsLo, tm.MorselsTf)
		}
	}
	return nil
}
