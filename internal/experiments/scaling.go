package experiments

import (
	"fmt"
	"time"

	"wasmdb/internal/core"
	"wasmdb/internal/engine"
	"wasmdb/internal/harness"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/workload"
)

// ScalingWorkers are the worker-pool sizes the scaling experiment sweeps.
var ScalingWorkers = []int{1, 2, 4}

// Scaling measures intra-query parallel speedup: one selective global
// aggregation over an integer column, compiled once, executed with 1, 2,
// and 4 morsel workers on fully optimized code. The query is chosen to be
// parallel-eligible (keyless aggregation without float SUM, LIMIT, or fuel),
// so any PipelinesSerial in the run indicates a classifier regression — the
// experiment fails rather than silently reporting serial numbers as scaling.
func Scaling(o Options) ([]Record, error) {
	o.norm()
	cat, err := workload.Catalog(workload.Spec{
		Name: "t", Rows: o.Rows, IntCols: 2, FloatCols: 2, Seed: 4343,
	})
	if err != nil {
		return nil, err
	}
	src := "SELECT COUNT(*), SUM(i0), MIN(i1), MAX(i1) FROM t WHERE i0 < 0"

	stmt, err := sql.ParseSelect(src)
	if err != nil {
		return nil, err
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(q)
	if err != nil {
		return nil, err
	}
	cq, err := core.Compile(q, p)
	if err != nil {
		return nil, err
	}

	eng := engine.New(engine.Config{Tier: engine.TierTurbofan})
	var recs []Record
	for _, w := range ScalingWorkers {
		w := w
		var stats *core.ExecStats
		exec := harness.Median(o.Reps, func() time.Duration {
			var err error
			_, stats, err = core.Execute(cq, q, eng, core.ExecOptions{
				WaitOptimized: true,
				Parallelism:   w,
			})
			if err != nil {
				panic(fmt.Sprintf("scaling w=%d: %v", w, err))
			}
			return stats.Run
		})
		if w > 1 && stats.PipelinesSerial > 0 {
			return nil, fmt.Errorf("scaling w=%d: fell back to serial (%s)", w, stats.SerialFallback)
		}
		recs = append(recs, Record{
			Name:    fmt.Sprintf("scaling:w%d", w),
			Backend: "mutable",
			Rows:    o.Rows,
			ExecNs:  exec.Nanoseconds(),
			Workers: w,
		})
	}
	return recs, nil
}
