package experiments

import (
	"fmt"
	"time"

	"wasmdb/internal/core"
	"wasmdb/internal/engine"
	"wasmdb/internal/harness"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/workload"
)

// ScalingWorkers are the worker-pool sizes the scaling experiment sweeps.
var ScalingWorkers = []int{1, 2, 4}

// scalingQueries are the parallel-eligible shapes the experiment sweeps:
// a keyless aggregation (merged via ad-hoc partial-state exports), a
// grouped aggregation (merged host-side through the group-merge barrier),
// and a hash join (build partitions merged at the join barrier, probe
// embarrassingly parallel). The join runs on its own build/probe table
// pair; the others on the generic table t.
var scalingQueries = []struct {
	name string
	join bool
	src  string
}{
	{"scaling", false, "SELECT COUNT(*), SUM(i0), MIN(i1), MAX(i1) FROM t WHERE i0 < 0"},
	{"scaling-group", false, "SELECT g0, COUNT(*), SUM(i0), MIN(i1), MAX(i1) FROM t GROUP BY g0"},
	{"scaling-join", true, "SELECT COUNT(*) FROM build, probe WHERE build.pk = probe.fk"},
}

// Scaling measures intra-query parallel speedup: each query is compiled
// once and executed with 1, 2, and 4 morsel workers on fully optimized
// code. The queries are chosen to be parallel-eligible, so a serial
// fallback at w > 1 indicates a classifier regression; rather than abort
// the whole experiment, the fallback reason is recorded on the result row
// so the regression is visible in BENCH_scaling.json next to the numbers.
func Scaling(o Options) ([]Record, error) {
	o.norm()
	cat, err := workload.Catalog(workload.Spec{
		Name: "t", Rows: o.Rows, IntCols: 2, FloatCols: 2,
		GroupCols: 1, GroupDistinct: 64, Seed: 4343,
	})
	if err != nil {
		return nil, err
	}

	// Join pair: build is a quarter of the probe row count, unique keys.
	joinCat, err := workload.JoinPair(o.Rows/4, o.Rows, 1, 4343)
	if err != nil {
		return nil, err
	}

	eng := engine.New(engine.Config{Tier: engine.TierTurbofan})
	var recs []Record
	for _, qry := range scalingQueries {
		qcat := cat
		if qry.join {
			qcat = joinCat
		}
		stmt, err := sql.ParseSelect(qry.src)
		if err != nil {
			return nil, err
		}
		q, err := sema.Analyze(stmt, qcat)
		if err != nil {
			return nil, err
		}
		p, err := plan.Build(q)
		if err != nil {
			return nil, err
		}
		cq, err := core.Compile(q, p)
		if err != nil {
			return nil, err
		}

		for _, w := range ScalingWorkers {
			w := w
			var stats *core.ExecStats
			exec := harness.Median(o.Reps, func() time.Duration {
				var err error
				_, stats, err = core.Execute(cq, q, eng, core.ExecOptions{
					WaitOptimized: true,
					Parallelism:   w,
				})
				if err != nil {
					panic(fmt.Sprintf("%s w=%d: %v", qry.name, w, err))
				}
				return stats.Run
			})
			recs = append(recs, Record{
				Name:     fmt.Sprintf("%s:w%d", qry.name, w),
				Backend:  "mutable",
				Rows:     o.Rows,
				ExecNs:   exec.Nanoseconds(),
				Workers:  w,
				Fallback: stats.SerialFallback,
			})
		}
	}
	return recs, nil
}
