package experiments

import (
	"fmt"
	"runtime"

	"wasmdb"
)

// Auto measures the autopilot crossover (BENCH_auto.json): for a small
// workload (a tiny supplier aggregation) and a large one (TPC-H Q1), it runs
// every manual backend plus backend-auto cold (plan cache flushed before
// each rep) and warm, and asserts the crossover the cost model exists for —
// auto lands within 10% of the best interpreter on the small workload and
// within 10% of the best compiled configuration on the large one (execution
// time, min-of-reps). A third workload deliberately breaks the planner's
// estimate (stacked always-true conjuncts) and asserts that the warm
// decision, corrected by stored execution feedback, differs from the cold
// one.
func Auto(o Options) ([]Record, error) {
	o.norm()
	reps := o.Reps
	if reps < 5 {
		// Sub-millisecond execution times need a few reps for a stable min.
		reps = 5
	}
	db := wasmdb.Open()
	if err := db.LoadTPCH(o.SF, 42); err != nil {
		return nil, err
	}

	q1, _ := wasmdb.TPCHQuery("Q1")
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	manual := []struct {
		name     string
		compiled bool
		opts     []wasmdb.Option
	}{
		{"volcano", false, []wasmdb.Option{wasmdb.WithBackend(wasmdb.BackendVolcano)}},
		{"vectorized", false, []wasmdb.Option{wasmdb.WithBackend(wasmdb.BackendVectorized)}},
		{"liftoff", true, []wasmdb.Option{wasmdb.WithBackend(wasmdb.BackendWasmLiftoff)}},
		{"adaptive", true, []wasmdb.Option{wasmdb.WithBackend(wasmdb.BackendWasm)}},
		{"parallel", true, []wasmdb.Option{wasmdb.WithBackend(wasmdb.BackendWasm), wasmdb.WithParallelism(workers)}},
	}

	// minExec runs sql reps times (after one untimed warm-up) and returns the
	// stats of the rep with the lowest execution time.
	minExec := func(sql string, opts ...wasmdb.Option) (wasmdb.Stats, error) {
		if _, err := db.Query(sql, opts...); err != nil {
			return wasmdb.Stats{}, err
		}
		var best wasmdb.Stats
		for i := 0; i < reps; i++ {
			res, err := db.Query(sql, opts...)
			if err != nil {
				return wasmdb.Stats{}, err
			}
			if i == 0 || res.Stats.Execute < best.Execute {
				best = res.Stats
			}
		}
		return best, nil
	}
	rec := func(name, backend string, st wasmdb.Stats) Record {
		return Record{
			Name:            name,
			Backend:         backend,
			TranslateNs:     st.Translate.Nanoseconds(),
			LiftoffNs:       st.Liftoff.Nanoseconds(),
			TurbofanNs:      st.Turbofan.Nanoseconds(),
			ExecNs:          st.Execute.Nanoseconds(),
			MorselsLiftoff:  st.MorselsLiftoff,
			MorselsTurbofan: st.MorselsTurbofan,
			Workers:         st.Workers,
			Fallback:        st.SerialFallback,
			Choice:          st.Auto,
		}
	}

	var recs []Record
	for _, w := range []struct {
		name, sql   string
		wantChoice  string
		wantAgainst bool // compare against compiled configs (else interpreters)
	}{
		{"small", "SELECT COUNT(*), SUM(s_acctbal) FROM supplier", "volcano", false},
		{"large", q1, "adaptive", true},
	} {
		bestClass := int64(0)
		for _, m := range manual {
			st, err := minExec(w.sql, m.opts...)
			if err != nil {
				return nil, fmt.Errorf("auto:%s on %s: %w", w.name, m.name, err)
			}
			recs = append(recs, rec("auto:"+w.name+":"+m.name, m.name, st))
			if m.compiled == w.wantAgainst {
				if e := st.Execute.Nanoseconds(); bestClass == 0 || e < bestClass {
					bestClass = e
				}
			}
		}

		// Cold: every rep re-decides from estimates alone.
		db.FlushPlanCache()
		coldRes, err := db.Query(w.sql, wasmdb.WithAutoTuning())
		if err != nil {
			return nil, fmt.Errorf("auto:%s cold: %w", w.name, err)
		}
		cold := coldRes.Stats
		for i := 1; i < reps; i++ {
			db.FlushPlanCache()
			res, err := db.Query(w.sql, wasmdb.WithAutoTuning())
			if err != nil {
				return nil, fmt.Errorf("auto:%s cold: %w", w.name, err)
			}
			if res.Stats.Execute < cold.Execute {
				cold = res.Stats
			}
		}
		recs = append(recs, rec("auto:"+w.name+":auto-cold", "auto", cold))

		// Warm: decisions see the feedback the cold runs stored.
		warm, err := minExec(w.sql, wasmdb.WithAutoTuning())
		if err != nil {
			return nil, fmt.Errorf("auto:%s warm: %w", w.name, err)
		}
		recs = append(recs, rec("auto:"+w.name+":auto-warm", "auto", warm))

		if warm.Auto != w.wantChoice {
			return nil, fmt.Errorf("auto:%s: warm decision %q, want %q", w.name, warm.Auto, w.wantChoice)
		}
		// Crossover check on execution time. The 100µs floor keeps scheduler
		// noise on sub-millisecond runs from failing a comparison between two
		// executions of the same machine code.
		if limit := bestClass+bestClass/10+100_000; warm.Execute.Nanoseconds() > limit {
			return nil, fmt.Errorf("auto:%s: warm auto exec %dns exceeds best-in-class %dns by >10%%",
				w.name, warm.Execute.Nanoseconds(), bestClass)
		}
	}

	// Misprediction correction: four always-true conjuncts make the planner
	// estimate ~6% of customer when every row qualifies. The cold decision
	// interprets; the observed cardinality stored on the feedback slot scales
	// the warm estimate up and flips the decision to a compiling choice.
	mis := "SELECT c_custkey, c_acctbal FROM customer " +
		"WHERE c_acctbal > -99999 AND c_acctbal > -99998 AND c_acctbal > -99997 AND c_acctbal > -99996 " +
		"ORDER BY c_custkey"
	db.FlushPlanCache()
	coldRes, err := db.Query(mis, wasmdb.WithAutoTuning())
	if err != nil {
		return nil, fmt.Errorf("auto:mispredict cold: %w", err)
	}
	warmRes, err := db.Query(mis, wasmdb.WithAutoTuning())
	if err != nil {
		return nil, fmt.Errorf("auto:mispredict warm: %w", err)
	}
	recs = append(recs,
		rec("auto:mispredict:cold", "auto", coldRes.Stats),
		rec("auto:mispredict:warm", "auto", warmRes.Stats))
	if coldRes.Stats.Auto == warmRes.Stats.Auto {
		return nil, fmt.Errorf("auto:mispredict: warm decision %q did not change from cold", warmRes.Stats.Auto)
	}
	return recs, nil
}
