package experiments

import (
	"fmt"

	"wasmdb"
)

// PlanCache measures the plan-fingerprint compiled-query cache on the
// paper's architecture: one cold execution of a query shape (codegen and
// JIT compilation included), then Reps warm executions of the same shape
// with a different literal each — every one a cache hit that skips codegen
// and both compile tiers and dispatches the optimizing tier from the first
// morsel. Emits two records, "plancache:cold" and "plancache:warm" (the
// warm record is the lowest-latency hit).
func PlanCache(o Options) ([]Record, error) {
	o.norm()
	db := wasmdb.Open()
	if err := db.LoadTPCH(o.SF, 42); err != nil {
		return nil, err
	}
	src := func(qty int) string {
		return fmt.Sprintf(
			"SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < %d", qty)
	}
	// WithWaitOptimized lets the cold run finish its background TurboFan
	// compile before returning, so the cached module is fully tiered up and
	// warm runs measure pure optimized execution.
	run := func(sql string) (wasmdb.Stats, error) {
		res, err := db.Query(sql, wasmdb.WithWaitOptimized())
		if err != nil {
			return wasmdb.Stats{}, err
		}
		return res.Stats, nil
	}

	cold, err := run(src(25))
	if err != nil {
		return nil, err
	}

	var warm wasmdb.Stats
	for i := 0; i < o.Reps; i++ {
		st, err := run(src(26 + i))
		if err != nil {
			return nil, err
		}
		if i == 0 || st.Execute < warm.Execute {
			warm = st
		}
	}

	// Self-check before emitting: every warm run must have hit (one miss on
	// the cold run only), and a hit must report zero compile time.
	cs := db.PlanCacheStats()
	if cs.Misses != 1 || cs.Hits < int64(o.Reps) {
		return nil, fmt.Errorf("plancache: expected 1 miss and >=%d hits, got %d/%d",
			o.Reps, cs.Misses, cs.Hits)
	}
	if warm.Liftoff != 0 || warm.Turbofan != 0 {
		return nil, fmt.Errorf("plancache: warm run reports compile time (liftoff=%v turbofan=%v)",
			warm.Liftoff, warm.Turbofan)
	}

	rec := func(name string, st wasmdb.Stats) Record {
		return Record{
			Name:            name,
			Backend:         "mutable",
			TranslateNs:     st.Translate.Nanoseconds(),
			LiftoffNs:       st.Liftoff.Nanoseconds(),
			TurbofanNs:      st.Turbofan.Nanoseconds(),
			ExecNs:          st.Execute.Nanoseconds(),
			MorselsLiftoff:  st.MorselsLiftoff,
			MorselsTurbofan: st.MorselsTurbofan,
		}
	}
	return []Record{rec("plancache:cold", cold), rec("plancache:warm", warm)}, nil
}
