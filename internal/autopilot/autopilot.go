// Package autopilot decides, per query, how the engine should execute when
// the caller selects BackendAuto: interpret (tuple-at-a-time volcano for the
// very smallest queries, the vectorized engine above that — zero compilation
// either way) versus compile (liftoff-only versus adaptive tier-up), and
// the morsel worker-pool size. The paper's architecture makes adaptivity a
// per-morsel engine concern; this package closes the remaining loop one
// level up — whether to enter the compiling engine at all, and with how
// much parallelism — following the empirical observation (Ma et al.,
// arXiv:2311.04692) that compilation only pays off past a data-volume
// threshold.
//
// The cost model is deliberately small: a single scalar "work" estimate in
// row units, derived from the planner's cardinality estimates (ProfilePlan),
// bucketed by three thresholds (Knobs). Cold decisions use estimates alone;
// warm decisions additionally consult the execution feedback the plan cache
// stores per fingerprint (plancache.Feedback), so a cold decision made from
// a wrong estimate corrects itself on the next run of the same shape.
//
// Decisions are a pure function of (profile, feedback, knobs): no clocks,
// no randomness, no global state. Given the same fingerprint, feedback
// slot, and catalog statistics, the decision is always the same — the
// property the byte-identical differential corpora rely on.
//
// Layering: autopilot sits beside the planner and below the public API; it
// may import only plan, plancache, and obs (`make lint-layers` checks).
package autopilot

import (
	"fmt"
	"math"

	"wasmdb/internal/obs"
	"wasmdb/internal/plan"
	"wasmdb/internal/plancache"
)

// Choice is the backend-and-tier half of a decision.
type Choice int

// The four execution strategies auto picks between.
const (
	// ChoiceVectorized interprets over pre-compiled vector kernels — no
	// compilation at all, the right call when the query finishes before
	// even baseline compilation would pay for itself.
	ChoiceVectorized Choice = iota
	// ChoiceLiftoff compiles with the baseline tier only: the query is big
	// enough that compiled code wins, but would finish before background
	// optimization could publish anything worth the compile burn.
	ChoiceLiftoff
	// ChoiceAdaptive compiles baseline and tiers up in the background —
	// the paper's default for long queries.
	ChoiceAdaptive
	// ChoiceVolcano interprets tuple-at-a-time. Boxed values lose to the
	// vectorized engine as soon as there is real data volume, but the
	// vectorized engine pays a fixed batch-machinery setup cost (~10⁵ ns)
	// that tuple-at-a-time does not — so for the very smallest queries
	// volcano is the fastest thing we have.
	ChoiceVolcano
)

func (c Choice) String() string {
	switch c {
	case ChoiceVolcano:
		return "volcano"
	case ChoiceVectorized:
		return "vectorized"
	case ChoiceLiftoff:
		return "liftoff"
	case ChoiceAdaptive:
		return "adaptive"
	}
	return "unknown"
}

// Profile is the cost-relevant shape of a physical plan, extracted once per
// decision by ProfilePlan from the planner's (sanitized, finite, ≥1)
// cardinality estimates.
type Profile struct {
	// ScanRows is the total raw base-table cardinality — rows the scan
	// pipelines touch regardless of filter selectivity. This term uses
	// catalog row counts, not estimates, so it is exact.
	ScanRows float64
	// TailRows is the estimate-derived downstream work in row units: join
	// build/probe/output, group hashing input and output, n·log₂n sort
	// work, and final result emission.
	TailRows float64
	// OutRows is the root estimate — what the planner thinks the result
	// cardinality is. Feedback corrections compare it to observed rows.
	OutRows float64
	// Limit is the query's effective LIMIT (bound placeholders already
	// resolved by the caller; -1 when absent), and PreLimitRows the
	// estimate entering the limit — together they model the scan
	// short-circuit a limit enables.
	Limit        int64
	PreLimitRows float64
	// Shape flags for the worker grant.
	Joins     int
	Grouped   bool
	GroupKeys int
	Sorted    bool
}

// ProfilePlan walks a physical plan and accumulates its cost profile.
func ProfilePlan(root plan.Node) Profile {
	p := Profile{Limit: -1, OutRows: root.Rows()}
	profileNode(root, &p)
	return p
}

func profileNode(n plan.Node, p *Profile) {
	switch x := n.(type) {
	case *plan.Scan:
		p.ScanRows += float64(x.Table.Rows())
	case *plan.HashJoin:
		p.Joins++
		p.TailRows += x.Build.Rows() + x.Probe.Rows() + x.Rows()
		profileNode(x.Build, p)
		profileNode(x.Probe, p)
	case *plan.Group:
		p.Grouped = true
		p.GroupKeys = len(x.Keys)
		p.TailRows += x.Input.Rows() + x.Rows()
		profileNode(x.Input, p)
	case *plan.Sort:
		p.Sorted = true
		in := x.Input.Rows()
		p.TailRows += in * math.Log2(in+1)
		profileNode(x.Input, p)
	case *plan.Limit:
		p.Limit = x.N
		p.PreLimitRows = x.Input.Rows()
		profileNode(x.Input, p)
	case *plan.Project:
		p.TailRows += x.Rows() // result decode and emission
		profileNode(x.Input, p)
	}
}

// Knobs are the decision thresholds, in estimated row-work units. The
// defaults place the vectorized/liftoff crossover where per-query codegen +
// baseline compilation (~a millisecond) stops dominating, and the
// liftoff/adaptive crossover where background optimization has enough
// morsels left to publish into.
type Knobs struct {
	// Below VolcanoBelow, interpret tuple-at-a-time: the query is too small
	// to amortize even the vectorized engine's fixed batch setup.
	VolcanoBelow float64
	// Below InterpretBelow (and at or above VolcanoBelow), interpret
	// vectorized (ChoiceVectorized).
	InterpretBelow float64
	// Below AdaptiveAbove (and at or above InterpretBelow), compile
	// baseline-only; at or above it, tier up adaptively.
	AdaptiveAbove float64
	// At or above ParallelAbove grant 2 workers, at 4× grant 4, at 16×
	// grant 8 — capped by MaxWorkers.
	ParallelAbove float64
	MaxWorkers    int
	// FeedbackClamp bounds the observed/estimated row-count ratio applied
	// as a correction, keeping one pathological observation from swinging
	// decisions unboundedly.
	FeedbackClamp float64
}

// DefaultKnobs returns the tuned defaults.
func DefaultKnobs() Knobs {
	return Knobs{
		VolcanoBelow:   1024,
		InterpretBelow: 4096,
		AdaptiveAbove:  32768,
		ParallelAbove:  65536,
		MaxWorkers:     8,
		FeedbackClamp:  64,
	}
}

// Decision is one resolved auto choice.
type Decision struct {
	Choice Choice
	// Workers is the morsel worker-pool size to request (1 = serial).
	Workers int
	// Work is the scalar cost estimate the thresholds were applied to.
	Work float64
	// Corrected reports that stored feedback changed the work estimate.
	Corrected bool
	// Reason is a human-readable one-liner for EXPLAIN ANALYZE and traces.
	Reason string
}

// Decide maps a plan profile (and optional stored feedback) to an execution
// strategy. It is a pure function — see the package comment for why that
// matters.
func Decide(p Profile, fb *plancache.Feedback, k Knobs) Decision {
	scan, tail := p.ScanRows, p.TailRows

	// A LIMIT over a bare scan short-circuits: execution stops once the
	// limit is hit, so the expected scan volume is the fraction of the
	// estimated pre-limit output the limit keeps. Sorts, groups, and joins
	// must consume their whole input first, so only the no-tail shape
	// scales down. This term is why the decision depends on a bound LIMIT
	// parameter — and why deciding before bind would misclassify.
	if p.Limit >= 0 && !p.Sorted && !p.Grouped && p.Joins == 0 && p.PreLimitRows >= 1 {
		if frac := float64(p.Limit) / p.PreLimitRows; frac < 1 {
			scan *= frac
			tail *= frac
		}
	}

	// Feedback correction: scale the estimate-derived tail by the observed
	// result cardinality relative to the estimate. Only for unaggregated
	// plans — a grouped query's result counts groups, not processed rows,
	// so it says nothing about the work estimate (whose scan term is exact
	// catalog data anyway). The clamp bounds the swing; the correction is
	// deterministic because the feedback slot is part of the decision input.
	corrected := false
	if fb != nil && fb.Rows > 0 && !p.Grouped && p.OutRows >= 1 {
		ratio := float64(fb.Rows) / p.OutRows
		if ratio > k.FeedbackClamp {
			ratio = k.FeedbackClamp
		}
		if ratio < 1/k.FeedbackClamp {
			ratio = 1 / k.FeedbackClamp
		}
		if ratio != 1 {
			tail *= ratio
			corrected = true
		}
	}

	work := scan + tail
	d := Decision{Work: work, Corrected: corrected, Workers: 1}
	switch {
	case work < k.VolcanoBelow:
		d.Choice = ChoiceVolcano
	case work < k.InterpretBelow:
		d.Choice = ChoiceVectorized
	case work < k.AdaptiveAbove:
		d.Choice = ChoiceLiftoff
	default:
		d.Choice = ChoiceAdaptive
	}
	if d.Choice == ChoiceLiftoff || d.Choice == ChoiceAdaptive {
		d.Workers = workersFor(work, p, fb, k)
	}
	suffix := ""
	if corrected {
		suffix = ", feedback-corrected"
	}
	d.Reason = fmt.Sprintf("est-work %.0f rows%s", work, suffix)
	return d
}

// workersFor sizes the worker-pool request. Workers are granted only for
// shapes whose parallel merge is order-deterministic — sorted output (the
// run merge fixes the order) or keyless aggregation (one row) — so auto
// results stay byte-identical to serial execution; and LIMIT without ORDER
// BY never parallelizes (mirroring the executor's classifier). A feedback
// slot recording an intrinsic serial fallback stops the request entirely:
// the classifier would refuse it again every time.
func workersFor(work float64, p Profile, fb *plancache.Feedback, k Knobs) int {
	orderStable := p.Sorted || (p.Grouped && p.GroupKeys == 0)
	if !orderStable {
		return 1
	}
	if p.Limit >= 0 && !p.Sorted {
		return 1
	}
	if fb != nil && fb.SerialFallback != "" && fb.FallbackIntrinsic {
		return 1
	}
	w := 1
	switch {
	case work >= 16*k.ParallelAbove:
		w = 8
	case work >= 4*k.ParallelAbove:
		w = 4
	case work >= k.ParallelAbove:
		w = 2
	}
	if w > k.MaxWorkers {
		w = k.MaxWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Record stamps the decision on the query trace (the EXPLAIN ANALYZE and
// query-log surface) and the process-wide per-choice decision counter.
func (d Decision) Record(tr *obs.Trace) {
	corr := int64(0)
	if d.Corrected {
		corr = 1
	}
	tr.Event(obs.EvAutopilot,
		obs.S("choice", d.Choice.String()),
		obs.I("workers", int64(d.Workers)),
		obs.I("corrected", corr),
		obs.S("reason", d.Reason))
	obs.Default.CounterWith(obs.MetricAutopilotDecisions,
		obs.Label{Key: "choice", Val: d.Choice.String()}).Add(1)
}
