package autopilot

// Test-only imports below (sql, sema, catalog) are exempt from the
// lint-layers import pin: they build real plans to profile.

import (
	"testing"

	"wasmdb/internal/catalog"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/types"
)

func profileFor(t *testing.T, cat *catalog.Catalog, src string) Profile {
	t.Helper()
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	return ProfilePlan(p)
}

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	a, err := cat.Create("a", []catalog.ColumnDef{
		{Name: "id", Type: types.TInt32},
		{Name: "x", Type: types.TInt32},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a.AppendRow(types.NewInt32(int32(i)), types.NewInt32(int32(i%7)))
	}
	b, err := cat.Create("b", []catalog.ColumnDef{
		{Name: "aid", Type: types.TInt32},
		{Name: "v", Type: types.TInt64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		b.AppendRow(types.NewInt32(int32(i)), types.NewInt64(int64(i)))
	}
	return cat
}

func TestProfilePlanShapes(t *testing.T) {
	cat := testCatalog(t)

	scan := profileFor(t, cat, "SELECT x FROM a WHERE x < 3")
	if scan.ScanRows != 1000 || scan.Grouped || scan.Sorted || scan.Joins != 0 || scan.Limit != -1 {
		t.Errorf("scan profile: %+v", scan)
	}
	if scan.TailRows <= 0 {
		t.Errorf("scan profile: no emission tail: %+v", scan)
	}

	group := profileFor(t, cat, "SELECT x, COUNT(*) AS n FROM a GROUP BY x ORDER BY n LIMIT 3")
	if !group.Grouped || group.GroupKeys != 1 || !group.Sorted || group.Limit != 3 {
		t.Errorf("tower profile: %+v", group)
	}
	if group.PreLimitRows < 1 {
		t.Errorf("tower profile: PreLimitRows %v", group.PreLimitRows)
	}

	agg := profileFor(t, cat, "SELECT COUNT(*) FROM a")
	if !agg.Grouped || agg.GroupKeys != 0 || agg.OutRows != 1 {
		t.Errorf("keyless agg profile: %+v", agg)
	}

	join := profileFor(t, cat, "SELECT a.x FROM a, b WHERE a.id = b.aid")
	if join.Joins != 1 || join.ScanRows != 1100 {
		t.Errorf("join profile: %+v", join)
	}
	// Join tail covers build + probe + output on top of the raw scans.
	if join.TailRows < 100 {
		t.Errorf("join profile: tail %v", join.TailRows)
	}
}
