package autopilot

import (
	"testing"

	"wasmdb/internal/plancache"
)

func knobs() Knobs { return DefaultKnobs() }

func TestDecideBands(t *testing.T) {
	k := knobs()
	cases := []struct {
		name string
		p    Profile
		want Choice
	}{
		{"tiny", Profile{ScanRows: 100, TailRows: 10, OutRows: 100, Limit: -1}, ChoiceVolcano},
		{"small", Profile{ScanRows: 2000, TailRows: 100, OutRows: 2000, Limit: -1}, ChoiceVectorized},
		{"mid", Profile{ScanRows: 10000, TailRows: 2000, OutRows: 10000, Limit: -1}, ChoiceLiftoff},
		{"large", Profile{ScanRows: 50000, TailRows: 10000, OutRows: 50000, Limit: -1}, ChoiceAdaptive},
		{"band-edge-volcano", Profile{ScanRows: k.VolcanoBelow, Limit: -1}, ChoiceVectorized},
		{"band-edge-interpret", Profile{ScanRows: k.InterpretBelow, Limit: -1}, ChoiceLiftoff},
		{"band-edge-adaptive", Profile{ScanRows: k.AdaptiveAbove, Limit: -1}, ChoiceAdaptive},
	}
	for _, c := range cases {
		if d := Decide(c.p, nil, k); d.Choice != c.want {
			t.Errorf("%s: choice %v (work %.0f), want %v", c.name, d.Choice, d.Work, c.want)
		}
	}
}

// Interpret choices never carry a worker grant; compile choices get workers
// only for order-stable shapes above the threshold.
func TestWorkerGrant(t *testing.T) {
	k := knobs()
	sorted := Profile{ScanRows: 100000, TailRows: 50000, OutRows: 100000, Limit: -1, Sorted: true}
	if d := Decide(sorted, nil, k); d.Choice != ChoiceAdaptive || d.Workers != 2 {
		t.Errorf("sorted 150k: %+v, want adaptive with 2 workers", d)
	}
	big := sorted
	big.ScanRows, big.TailRows = 4*k.ParallelAbove, 0
	if d := Decide(big, nil, k); d.Workers != 4 {
		t.Errorf("4x threshold: workers %d, want 4", d.Workers)
	}
	big.ScanRows = 16 * k.ParallelAbove
	if d := Decide(big, nil, k); d.Workers != 8 {
		t.Errorf("16x threshold: workers %d, want 8", d.Workers)
	}
	// MaxWorkers caps the grant (the caller lowers it to GOMAXPROCS).
	k2 := k
	k2.MaxWorkers = 2
	if d := Decide(big, nil, k2); d.Workers != 2 {
		t.Errorf("capped: workers %d, want 2", d.Workers)
	}

	// Unordered output does not parallelize — the merge order would differ
	// from serial execution.
	unordered := Profile{ScanRows: 1000000, TailRows: 0, OutRows: 1000000, Limit: -1}
	if d := Decide(unordered, nil, k); d.Workers != 1 {
		t.Errorf("unordered scan: workers %d, want 1", d.Workers)
	}
	// Keyless aggregation emits one row: order-stable.
	agg := Profile{ScanRows: 1000000, TailRows: 1000, OutRows: 1, Limit: -1, Grouped: true}
	if d := Decide(agg, nil, k); d.Workers < 2 {
		t.Errorf("keyless agg: workers %d, want >= 2", d.Workers)
	}
	// LIMIT without ORDER BY never parallelizes (mirrors the executor's
	// classifier).
	lim := Profile{ScanRows: 1000000, TailRows: 1000, OutRows: 1, Limit: 10, Grouped: true, PreLimitRows: 1}
	if d := Decide(lim, nil, k); d.Workers != 1 {
		t.Errorf("limit without sort: workers %d, want 1", d.Workers)
	}
}

// A LIMIT over a bare scan short-circuits execution; the work estimate
// scales with the bound limit value — the reason auto decisions must run
// after parameter binding.
func TestLimitShortCircuit(t *testing.T) {
	k := knobs()
	base := Profile{ScanRows: 60000, TailRows: 60000, OutRows: 4, PreLimitRows: 60000}
	small := base
	small.Limit = 4
	if d := Decide(small, nil, k); d.Choice != ChoiceVolcano {
		t.Errorf("limit 4: choice %v (work %.0f), want volcano", d.Choice, d.Work)
	}
	large := base
	large.Limit = 60000
	if d := Decide(large, nil, k); d.Choice != ChoiceAdaptive {
		t.Errorf("limit 60000: choice %v (work %.0f), want adaptive", d.Choice, d.Work)
	}
	// Sorts, groups, and joins must consume their whole input: no scaling.
	sorted := small
	sorted.Sorted = true
	if d := Decide(sorted, nil, k); d.Choice != ChoiceAdaptive {
		t.Errorf("limit 4 over sort: choice %v (work %.0f), want adaptive", d.Choice, d.Work)
	}
}

// Stored feedback scales the estimate-derived tail by the observed/estimated
// row ratio — but only for unaggregated plans (a grouped result counts
// groups, not processed rows), and clamped.
func TestFeedbackCorrection(t *testing.T) {
	k := knobs()
	// Estimate says ~94 rows (vectorized); observation says every row
	// qualified.
	p := Profile{ScanRows: 1500, TailRows: 700, OutRows: 94, Limit: -1, Sorted: true}
	cold := Decide(p, nil, k)
	if cold.Choice != ChoiceVectorized || cold.Corrected {
		t.Fatalf("cold: %+v", cold)
	}
	warm := Decide(p, &plancache.Feedback{Rows: 1500}, k)
	if !warm.Corrected || warm.Choice != ChoiceLiftoff {
		t.Fatalf("warm: %+v, want corrected liftoff", warm)
	}

	// Clamp: a pathological ratio cannot swing the estimate unboundedly.
	ext := Decide(p, &plancache.Feedback{Rows: 94_000_000}, k)
	if ext.Work > p.ScanRows+p.TailRows*k.FeedbackClamp+1 {
		t.Errorf("clamp breached: work %.0f", ext.Work)
	}

	// Grouped plans ignore the rows ratio.
	g := Profile{ScanRows: 60000, TailRows: 60000, OutRows: 4, Limit: -1, Grouped: true, GroupKeys: 2, Sorted: true}
	if d := Decide(g, &plancache.Feedback{Rows: 4}, k); d.Corrected {
		t.Errorf("grouped plan corrected by group-count feedback: %+v", d)
	}
}

// Feedback recording an intrinsic serial fallback stops future worker
// requests for the shape; transient reasons do not.
func TestIntrinsicFallbackStopsWorkers(t *testing.T) {
	k := knobs()
	p := Profile{ScanRows: 1000000, TailRows: 100000, OutRows: 1000000, Limit: -1, Sorted: true}
	if d := Decide(p, nil, k); d.Workers < 2 {
		t.Fatalf("cold grant: %+v", d)
	}
	intrinsic := &plancache.Feedback{Rows: 1000000, SerialFallback: "float-sum-order", FallbackIntrinsic: true}
	if d := Decide(p, intrinsic, k); d.Workers != 1 {
		t.Errorf("intrinsic fallback: workers %d, want 1", d.Workers)
	}
	transient := &plancache.Feedback{Rows: 1000000, SerialFallback: "worker-slots-exhausted", FallbackIntrinsic: false}
	if d := Decide(p, transient, k); d.Workers < 2 {
		t.Errorf("transient fallback: workers %d, want >= 2", d.Workers)
	}
}

// Decisions are a pure function of (profile, feedback, knobs).
func TestDecideDeterministic(t *testing.T) {
	k := knobs()
	p := Profile{ScanRows: 77777, TailRows: 31337, OutRows: 1234, Limit: 100, PreLimitRows: 5000, Joins: 1, Sorted: true}
	fb := &plancache.Feedback{Rows: 4321, SerialFallback: "limit", FallbackIntrinsic: true}
	first := Decide(p, fb, k)
	for i := 0; i < 100; i++ {
		if d := Decide(p, fb, k); d != first {
			t.Fatalf("iteration %d: %+v != %+v", i, d, first)
		}
	}
}

func TestChoiceStrings(t *testing.T) {
	for c, want := range map[Choice]string{
		ChoiceVolcano:    "volcano",
		ChoiceVectorized: "vectorized",
		ChoiceLiftoff:    "liftoff",
		ChoiceAdaptive:   "adaptive",
		Choice(99):       "unknown",
	} {
		if got := c.String(); got != want {
			t.Errorf("Choice(%d).String() = %q, want %q", c, got, want)
		}
	}
}
