package wasmdb

import "wasmdb/internal/catalog"

// TestCatalog exposes the database's catalog to external tests that need to
// plant values no SQL literal can produce (NaN float join keys).
func (db *DB) TestCatalog() *catalog.Catalog { return db.cat }
