package wasmdb_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"wasmdb"
	"wasmdb/internal/faultpoint"
)

// runawayJoinDB builds a database where `SELECT COUNT(*) FROM a, b WHERE
// a.k = b.k` explodes into an n:m join (every key equal): n*m pairs of work
// inside a handful of morsel calls — a query the host cannot stop without
// reaching inside generated code.
func runawayJoinDB(t *testing.T, rows int) *wasmdb.DB {
	t.Helper()
	db := wasmdb.Open()
	for _, name := range []string{"a", "b"} {
		if err := db.Exec(fmt.Sprintf("CREATE TABLE %s (k INT)", name)); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		sb.WriteString(fmt.Sprintf("INSERT INTO %s VALUES (1)", name))
		for i := 1; i < rows; i++ {
			sb.WriteString(",(1)")
		}
		if err := db.Exec(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func checkAlive(t *testing.T, db *wasmdb.DB) {
	t.Helper()
	res, err := db.Query("SELECT COUNT(*) FROM a WHERE k = 1", wasmdb.WithBackend(wasmdb.BackendWasmLiftoff))
	if err != nil {
		t.Fatalf("database unusable after failed query: %v", err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("sanity query returned %d rows", res.NumRows())
	}
}

func TestTimeoutStopsRunawayJoin(t *testing.T) {
	db := runawayJoinDB(t, 4000) // 16M join pairs
	start := time.Now()
	_, err := db.Query("SELECT COUNT(*) FROM a, b WHERE a.k = b.k",
		wasmdb.WithBackend(wasmdb.BackendWasmLiftoff), wasmdb.WithTimeout(50*time.Millisecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("runaway join returned %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("timeout took %v to take effect", el)
	}
	checkAlive(t, db)
}

func TestFuelStopsRunawayJoin(t *testing.T) {
	db := runawayJoinDB(t, 4000)
	_, err := db.Query("SELECT COUNT(*) FROM a, b WHERE a.k = b.k",
		wasmdb.WithBackend(wasmdb.BackendWasmLiftoff), wasmdb.WithFuel(100_000))
	if !errors.Is(err, wasmdb.ErrFuelExhausted) {
		t.Fatalf("runaway join returned %v, want ErrFuelExhausted", err)
	}
	checkAlive(t, db)
}

// TestGuardrailsStopInjectedInfiniteLoop forces the code generator to open
// every pipeline with a spin loop — a morsel call that never returns — and
// proves both budgets stop it with their typed errors.
func TestGuardrailsStopInjectedInfiniteLoop(t *testing.T) {
	db := runawayJoinDB(t, 10)
	faultpoint.Enable("core-infinite-loop", faultpoint.Always(errors.New("arm")))
	defer faultpoint.Disable("core-infinite-loop")

	for _, backend := range []wasmdb.Backend{wasmdb.BackendWasmLiftoff, wasmdb.BackendWasmTurbofan} {
		_, err := db.Query("SELECT COUNT(*) FROM a",
			wasmdb.WithBackend(backend), wasmdb.WithFuel(50_000))
		if !errors.Is(err, wasmdb.ErrFuelExhausted) {
			t.Fatalf("%v: infinite loop under fuel returned %v, want ErrFuelExhausted", backend, err)
		}
		_, err = db.Query("SELECT COUNT(*) FROM a",
			wasmdb.WithBackend(backend), wasmdb.WithTimeout(50*time.Millisecond))
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%v: infinite loop under timeout returned %v, want DeadlineExceeded", backend, err)
		}
	}
	faultpoint.Disable("core-infinite-loop")
	checkAlive(t, db)
}

func TestTurbofanFailureFallsBackToLiftoff(t *testing.T) {
	db := runawayJoinDB(t, 2000)
	faultpoint.Enable("turbofan-compile", faultpoint.Always(errors.New("injected tier-2 failure")))
	defer faultpoint.Disable("turbofan-compile")

	res, err := db.Query("SELECT COUNT(*) FROM a, b WHERE a.k = b.k",
		wasmdb.WithBackend(wasmdb.BackendWasm), wasmdb.WithWaitOptimized(), wasmdb.WithMorselRows(256))
	if err != nil {
		t.Fatalf("query failed instead of degrading to liftoff: %v", err)
	}
	if got := res.Value(0, 0).(int64); got != 2000*2000 {
		t.Errorf("COUNT(*) = %d, want %d", got, 2000*2000)
	}
	if res.Stats.TurbofanFailed == 0 {
		t.Error("Stats.TurbofanFailed = 0, want > 0")
	}
	if res.Stats.MorselsTurbofan != 0 {
		t.Errorf("MorselsTurbofan = %d after total tier-2 failure", res.Stats.MorselsTurbofan)
	}
	if res.Stats.MorselsLiftoff == 0 {
		t.Error("MorselsLiftoff = 0, expected the whole query on baseline code")
	}
}

func TestMemoryLimitTyped(t *testing.T) {
	db := wasmdb.Open()
	if err := db.Exec("CREATE TABLE g (k INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO g VALUES (0, 1)")
	for i := 1; i < 120_000; i++ {
		fmt.Fprintf(&sb, ",(%d, 1)", i)
	}
	if err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	const agg = "SELECT k, SUM(v) FROM g GROUP BY k"

	// Unbudgeted, the aggregation grows its hash table and succeeds.
	res, err := db.Query(agg, wasmdb.WithBackend(wasmdb.BackendWasmLiftoff))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 120_000 {
		t.Fatalf("groups = %d, want 120000", res.NumRows())
	}
	// A one-page budget makes the first growth fail with the typed error.
	_, err = db.Query(agg, wasmdb.WithBackend(wasmdb.BackendWasmLiftoff), wasmdb.WithMemoryLimit(64*1024))
	if !errors.Is(err, wasmdb.ErrMemoryLimit) {
		t.Fatalf("budgeted aggregation returned %v, want ErrMemoryLimit", err)
	}

	// The wmem-grow fault point forces the same failure without a budget.
	faultpoint.Enable("wmem-grow", faultpoint.Always(errors.New("injected grow failure")))
	_, err = db.Query(agg, wasmdb.WithBackend(wasmdb.BackendWasmLiftoff))
	faultpoint.Disable("wmem-grow")
	if !errors.Is(err, wasmdb.ErrMemoryLimit) {
		t.Fatalf("injected grow failure returned %v, want ErrMemoryLimit", err)
	}

	// The database keeps serving queries.
	if res, err = db.Query("SELECT COUNT(*) FROM g"); err != nil || res.Value(0, 0).(int64) != 120_000 {
		t.Fatalf("database unusable after memory-limit failures: %v", err)
	}
}

func TestQueryContextPreCanceled(t *testing.T) {
	db := runawayJoinDB(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, backend := range []wasmdb.Backend{wasmdb.BackendWasm, wasmdb.BackendVolcano, wasmdb.BackendVectorized} {
		_, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM a", wasmdb.WithBackend(backend))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: pre-canceled query returned %v, want context.Canceled", backend, err)
		}
	}
}

// TestConstantRegionOverflowIsAnError: a query whose string constants exceed
// the generated module's constant region must fail with an error, not a
// panic out of the public API.
func TestConstantRegionOverflowIsAnError(t *testing.T) {
	db := wasmdb.Open()
	if err := db.Exec("CREATE TABLE s (c CHAR(32))"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("INSERT INTO s VALUES ('hello')"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("SELECT COUNT(*) FROM s WHERE c = 'x'")
	for i := 0; i < 4096; i++ {
		fmt.Fprintf(&sb, " OR c = 'pad-%028d'", i)
	}
	_, err := db.Query(sb.String())
	if err == nil {
		t.Fatal("oversized constant region did not fail")
	}
	if !strings.Contains(err.Error(), "constant region") {
		t.Errorf("error %q does not name the constant region", err)
	}
	// The database keeps serving queries.
	res, err := db.Query("SELECT COUNT(*) FROM s WHERE c = 'hello'")
	if err != nil || res.Value(0, 0).(int64) != 1 {
		t.Fatalf("database unusable after overflow: %v", err)
	}
}
